//! Turning a [`SweepSpec`] into a deduplicated job plan.
//!
//! A plan is a deterministic flat list of polymorphic [`Job`]s — the unit
//! the executor runs, the store fingerprints and the `--shard k/n` filter
//! partitions. Two payloads exist:
//!
//! * **Sim** jobs cover the simulation grids (figures 1–3 / 7–10, tables
//!   4/5). The grid is partitioned into **groups** — one per (predictor,
//!   interval, case, seed replica) point. Every mechanism series in a
//!   group is normalized against the *same* baseline simulation, so the
//!   planner schedules exactly one `Baseline` job per group, shared by
//!   all series. For `M` mechanisms this plans `M + 1` simulations per
//!   group where the old per-series runners (`single_overhead` per
//!   mechanism) re-simulated the baseline every time and needed `2·M`.
//! * **Attack** jobs cover the security grids (Table 1, §5.5): one
//!   self-contained [`AttackJob`] per (attack, mechanism, predictor,
//!   core mode, seed replica) cell. No baseline dedup applies —
//!   `Mechanism::Baseline` is an ordinary series (the undefended
//!   comparison column).
//!
//! Each sim group draws its workload-stream seed from
//! [`SplitMix64::derive`](sbp_types::rng::SplitMix64::derive) labeled with
//! the group's **(case, seed replica)** pair — deliberately *not* the
//! interval or predictor. Every job inside a group (baseline and all
//! mechanisms) replays the identical instruction stream — the requirement
//! for a meaningful `cycles(mech) / cycles(baseline)` ratio — and on top
//! of that, the interval and predictor columns of one case replay the
//! *same* stream too, so cross-interval trends (Figure 1/7/8/9) and
//! cross-predictor trends (Figure 10) measure the variable under study
//! rather than stream-to-stream variance, exactly like the old
//! `seed_base + case` runners. Seeds are pairwise distinct across
//! distinct (case, replica) pairs.
//!
//! Attack jobs draw their seed from the master seed and a hash of the
//! cell's **(attack, mode, replica)** identity — deliberately *not* the
//! mechanism or predictor, mirroring the sim groups: every defense column
//! of one campaign faces the identical trial stream, so the mechanism
//! comparison measures the defense rather than stream-to-stream variance
//! (exactly like the old hand-rolled harnesses, which reused one seed per
//! attack across all mechanism rows). Because the identity is hashed
//! rather than positional, a cell also keeps its seed — and its store
//! fingerprint — when sibling axes of the spec are edited.

use serde::{Deserialize, Serialize};

use sbp_attack::AttackKind;
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::SwitchInterval;
use sbp_types::rng::SplitMix64;

use crate::spec::{PayloadSpec, SweepMode, SweepSpec};
use crate::store::fnv1a64;

/// One (predictor, interval, case, seed) grid point sharing a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobGroup {
    /// Predictor under test.
    pub predictor: PredictorKind,
    /// Switch interval.
    pub interval: SwitchInterval,
    /// Index into `spec.cases`.
    pub case_index: usize,
    /// Seed replica index.
    pub seed_index: u32,
    /// Derived workload-stream seed shared by every job in the group.
    pub seed: u64,
}

/// One attack-PoC campaign cell: fully self-contained (unlike sim jobs,
/// which resolve workloads/budget through the spec).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackJob {
    /// Campaign to run.
    pub attack: AttackKind,
    /// Defense under test (`Mechanism::Baseline` = undefended).
    pub mechanism: Mechanism,
    /// Direction predictor of the shared front-end.
    pub predictor: PredictorKind,
    /// Concurrent SMT attacker (`true`) or time-sliced (`false`).
    pub smt: bool,
    /// Trials to run.
    pub trials: u64,
    /// Seed replica index.
    pub seed_index: u32,
    /// Derived campaign seed.
    pub seed: u64,
}

/// One unit of work in a plan: the engine's polymorphic job payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Job {
    /// A simulation: a group point plus the mechanism to apply
    /// (`Mechanism::Baseline` marks the group's shared baseline job).
    Sim {
        /// Index into [`SweepPlan::groups`].
        group: usize,
        /// Mechanism this job simulates.
        mechanism: Mechanism,
    },
    /// An attack-PoC campaign cell.
    Attack(AttackJob),
}

impl Job {
    /// The `(group, mechanism)` pair of a simulation job.
    pub fn sim(&self) -> Option<(usize, Mechanism)> {
        match self {
            Job::Sim { group, mechanism } => Some((*group, *mechanism)),
            Job::Attack(_) => None,
        }
    }

    /// The payload of an attack job.
    pub fn attack(&self) -> Option<&AttackJob> {
        match self {
            Job::Attack(a) => Some(a),
            Job::Sim { .. } => None,
        }
    }
}

/// The planned job list for a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPlan {
    /// All (predictor, interval, case, seed) groups, grid order (empty
    /// for attack sweeps).
    pub groups: Vec<JobGroup>,
    /// All jobs. Sim sweeps: group-major, the baseline job first within
    /// each group. Attack sweeps: predictor-major, then mechanism, mode,
    /// attack, seed replica.
    pub jobs: Vec<Job>,
}

impl SweepPlan {
    /// Number of planned baseline simulations.
    pub fn baseline_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.sim().is_some_and(|(_, m)| m == Mechanism::Baseline))
            .count()
    }

    /// Job index of the `(group, mechanism)` pair given the series count
    /// (`mech_index = None` addresses the baseline job). Sim plans only.
    pub(crate) fn job_index(
        &self,
        group: usize,
        mech_index: Option<usize>,
        series: usize,
    ) -> usize {
        group * (series + 1) + mech_index.map_or(0, |m| m + 1)
    }
}

/// Plans the deterministic job list for `spec`.
///
/// Sim group seeds are `SplitMix64::derive(master_seed, case · S +
/// replica)`: pure in the spec (re-planning yields the identical plan),
/// distinct across (case, replica) pairs, and shared across the interval
/// and predictor axes so those columns compare like against like. Attack
/// job seeds hash the cell identity instead, so editing one axis of the
/// grid never reseeds — or re-fingerprints — the remaining cells.
pub fn plan(spec: &SweepSpec) -> SweepPlan {
    match &spec.payload {
        PayloadSpec::Sim => plan_sim(spec),
        PayloadSpec::Attack(grid) => {
            let mut jobs = Vec::with_capacity(
                spec.predictors.len()
                    * spec.mechanisms.len()
                    * grid.modes.len()
                    * grid.attacks.len()
                    * spec.seeds as usize,
            );
            for &predictor in &spec.predictors {
                for &mechanism in &spec.mechanisms {
                    for &mode in &grid.modes {
                        for &attack in &grid.attacks {
                            for seed_index in 0..spec.seeds {
                                jobs.push(Job::Attack(AttackJob {
                                    attack,
                                    mechanism,
                                    predictor,
                                    smt: mode == SweepMode::Smt,
                                    trials: grid.trials,
                                    seed_index,
                                    seed: attack_seed(spec.master_seed, attack, mode, seed_index),
                                }));
                            }
                        }
                    }
                }
            }
            SweepPlan {
                groups: Vec::new(),
                jobs,
            }
        }
    }
}

fn plan_sim(spec: &SweepSpec) -> SweepPlan {
    let mechs = spec.series_mechanisms();
    let (i_len, c_len, s_len) = (spec.intervals.len(), spec.cases.len(), spec.seeds as usize);
    let mut groups = Vec::with_capacity(spec.predictors.len() * i_len * c_len * s_len);
    let mut jobs = Vec::with_capacity(groups.capacity() * (mechs.len() + 1));
    for &predictor in &spec.predictors {
        for &interval in &spec.intervals {
            for case_index in 0..c_len {
                for seed_index in 0..s_len {
                    let stream = (case_index * s_len + seed_index) as u64;
                    groups.push(JobGroup {
                        predictor,
                        interval,
                        case_index,
                        seed_index: seed_index as u32,
                        seed: SplitMix64::derive(spec.master_seed, stream),
                    });
                    let group = groups.len() - 1;
                    jobs.push(Job::Sim {
                        group,
                        mechanism: Mechanism::Baseline,
                    });
                    for &mechanism in &mechs {
                        jobs.push(Job::Sim { group, mechanism });
                    }
                }
            }
        }
    }
    SweepPlan { groups, jobs }
}

/// Identity-keyed attack seed: shared by every (mechanism, predictor)
/// series of one campaign cell, stable under edits to sibling grid axes.
fn attack_seed(master: u64, attack: AttackKind, mode: SweepMode, seed_index: u32) -> u64 {
    let identity = format!("{}|{}|{seed_index}", attack.label(), mode.label());
    SplitMix64::derive(master, fnv1a64(identity.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig07_style_spec() -> SweepSpec {
        // M = 2 mechanisms, I = 3 intervals, C = 12 cases, S = 1 seed.
        SweepSpec::single("fig07")
            .with_mechanisms(vec![Mechanism::xor_btb(), Mechanism::noisy_xor_btb()])
    }

    fn matrix_spec() -> SweepSpec {
        SweepSpec::attack("tab01")
            .with_attacks(vec![AttackKind::SpectreV2, AttackKind::Sbpa])
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::noisy_xor_bp()])
            .with_trials(50)
    }

    #[test]
    fn job_count_is_m_plus_one_per_group_not_two_m() {
        let spec = fig07_style_spec();
        let plan = plan(&spec);
        let (m, i, c, s) = (2usize, 3usize, 12usize, 1usize);
        assert_eq!(plan.groups.len(), i * c * s);
        // The old per-series runners simulated 2·M·I·C·S = 144; the planner
        // schedules (M+1)·I·C·S = 108.
        assert_eq!(plan.jobs.len(), (m + 1) * i * c * s);
        assert!(plan.jobs.len() < 2 * m * i * c * s);
    }

    #[test]
    fn exactly_one_baseline_per_group() {
        let spec = fig07_style_spec();
        let plan = plan(&spec);
        assert_eq!(plan.baseline_jobs(), plan.groups.len());
        for (g, _) in plan.groups.iter().enumerate() {
            let in_group: Vec<(usize, Mechanism)> = plan
                .jobs
                .iter()
                .filter_map(Job::sim)
                .filter(|(jg, _)| *jg == g)
                .collect();
            assert_eq!(
                in_group
                    .iter()
                    .filter(|(_, m)| *m == Mechanism::Baseline)
                    .count(),
                1,
                "group {g}"
            );
            assert_eq!(in_group.len(), 3);
        }
    }

    #[test]
    fn explicit_baseline_in_spec_is_not_duplicated() {
        let spec = SweepSpec::single("x")
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::CompleteFlush]);
        let plan = plan(&spec);
        assert_eq!(plan.jobs.len(), 2 * plan.groups.len());
    }

    #[test]
    fn planning_is_deterministic() {
        let spec = fig07_style_spec();
        assert_eq!(plan(&spec), plan(&spec));
        let spec = matrix_spec();
        assert_eq!(plan(&spec), plan(&spec));
    }

    #[test]
    fn group_seeds_are_keyed_by_case_and_replica_only() {
        // Two predictors × three intervals so both shared axes are present.
        let spec =
            fig07_style_spec().with_predictors(vec![PredictorKind::Gshare, PredictorKind::TageScL]);
        let plan = plan(&spec);
        let mut by_case: std::collections::BTreeMap<(usize, u32), u64> =
            std::collections::BTreeMap::new();
        for g in &plan.groups {
            // Same (case, replica) ⇒ same stream across intervals and
            // predictors; first sighting registers the seed.
            let seed = *by_case
                .entry((g.case_index, g.seed_index))
                .or_insert(g.seed);
            assert_eq!(g.seed, seed, "case {} stream differs", g.case_index);
        }
        // Distinct (case, replica) pairs get pairwise distinct seeds.
        let distinct: std::collections::BTreeSet<u64> = by_case.values().copied().collect();
        assert_eq!(distinct.len(), by_case.len());
    }

    #[test]
    fn job_index_addresses_plan_order() {
        let spec = fig07_style_spec();
        let plan = plan(&spec);
        let series = spec.series_mechanisms().len();
        for (g, _) in plan.groups.iter().enumerate() {
            let b = plan.job_index(g, None, series);
            assert_eq!(plan.jobs[b].sim(), Some((g, Mechanism::Baseline)));
            for (mi, &m) in spec.series_mechanisms().iter().enumerate() {
                let idx = plan.job_index(g, Some(mi), series);
                assert_eq!(plan.jobs[idx].sim(), Some((g, m)));
            }
        }
    }

    #[test]
    fn master_seed_changes_every_group_seed() {
        let a = plan(&fig07_style_spec());
        let b = plan(&fig07_style_spec().with_master_seed(1));
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            assert_ne!(ga.seed, gb.seed);
        }
        let a = plan(&matrix_spec());
        let b = plan(&matrix_spec().with_master_seed(1));
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_ne!(ja.attack().unwrap().seed, jb.attack().unwrap().seed);
        }
    }

    #[test]
    fn attack_plan_covers_the_full_grid() {
        let spec = matrix_spec().with_seeds(2);
        let p = plan(&spec);
        assert!(p.groups.is_empty());
        // attacks × mechanisms × modes × seeds.
        assert_eq!(p.jobs.len(), 2 * 2 * 2 * 2);
        assert_eq!(p.baseline_jobs(), 0, "attack baselines are real series");
        for job in &p.jobs {
            let a = job.attack().expect("attack payload");
            assert_eq!(a.trials, 50);
        }
    }

    #[test]
    fn attack_seeds_are_keyed_by_attack_mode_and_replica_only() {
        // Like sim groups: every mechanism (and predictor) series of one
        // campaign cell replays the identical trial stream.
        let spec = matrix_spec()
            .with_seeds(2)
            .with_predictors(vec![PredictorKind::Gshare, PredictorKind::TageScL]);
        let p = plan(&spec);
        let mut by_cell: std::collections::BTreeMap<(String, bool, u32), u64> =
            std::collections::BTreeMap::new();
        for job in &p.jobs {
            let a = job.attack().unwrap();
            let key = (a.attack.label().to_string(), a.smt, a.seed_index);
            let seed = *by_cell.entry(key).or_insert(a.seed);
            assert_eq!(a.seed, seed, "mechanism/predictor series share streams");
        }
        // Distinct (attack, mode, replica) triples get distinct seeds.
        let distinct: std::collections::BTreeSet<u64> = by_cell.values().copied().collect();
        assert_eq!(distinct.len(), by_cell.len());
    }

    #[test]
    fn attack_seeds_survive_edits_to_sibling_axes() {
        // Removing one mechanism from the axis must not reseed the
        // remaining cells (the property store resume relies on).
        let full = plan(&matrix_spec());
        let narrowed = plan(&matrix_spec().with_mechanisms(vec![Mechanism::noisy_xor_bp()]));
        for job in &narrowed.jobs {
            let a = job.attack().unwrap();
            let twin = full
                .jobs
                .iter()
                .filter_map(Job::attack)
                .find(|b| {
                    b.attack == a.attack
                        && b.mechanism == a.mechanism
                        && b.smt == a.smt
                        && b.seed_index == a.seed_index
                })
                .expect("cell exists in the full grid");
            assert_eq!(a.seed, twin.seed);
        }
    }
}
