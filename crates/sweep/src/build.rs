//! Aggregating raw run results into a [`SweepReport`].

use sbp_core::Mechanism;
use sbp_hwcost::{BtbGeometry, PhtGeometry, XorOverlay};
use sbp_predictors::PredictorKind;
use sbp_types::report::{mean, stddev};
use sbp_types::{CellSummary, HwCell, RunRecord, SeriesSummary, SweepReport};

use crate::exec::RawRun;
use crate::plan::SweepPlan;
use crate::spec::{SweepMode, SweepSpec};

/// Builds the structured report from a plan and its raw results (one
/// [`RawRun`] per planned job, in job order).
pub fn build_report(spec: &SweepSpec, plan: &SweepPlan, raw: &[RawRun]) -> SweepReport {
    assert_eq!(raw.len(), plan.jobs.len(), "one result per planned job");
    let mechs = spec.series_mechanisms();

    // Baseline cycles per group (the shared divisor of every series).
    let mut base_cycles = vec![0.0f64; plan.groups.len()];
    for (j, job) in plan.jobs.iter().enumerate() {
        if job.mechanism == Mechanism::Baseline {
            base_cycles[job.group] = raw[j].cycles;
        }
    }

    let records: Vec<RunRecord> = plan
        .jobs
        .iter()
        .zip(raw)
        .map(|(job, run)| {
            let g = &plan.groups[job.group];
            let overhead = if job.mechanism == Mechanism::Baseline {
                None
            } else {
                Some(run.cycles / base_cycles[job.group] - 1.0)
            };
            RunRecord {
                series: job.mechanism.label().to_string(),
                predictor: g.predictor.label().to_string(),
                interval: g.interval.label().to_string(),
                case_id: spec.cases[g.case_index].id.clone(),
                seed_index: g.seed_index,
                seed: g.seed,
                cycles: run.cycles,
                overhead,
                stats: run.stats,
            }
        })
        .collect();

    // Cells and series, column order: predictor-major, then mechanism,
    // then interval; rows are cases.
    let (i_len, c_len, s_len) = (spec.intervals.len(), spec.cases.len(), spec.seeds as usize);
    let mut cells = Vec::new();
    let mut series = Vec::new();
    for (pi, &predictor) in spec.predictors.iter().enumerate() {
        for (mi, &mechanism) in mechs.iter().enumerate() {
            for (ii, &interval) in spec.intervals.iter().enumerate() {
                let label = series_label(spec, predictor, mechanism, interval.label());
                let mut case_means = Vec::with_capacity(c_len);
                for (ci, case) in spec.cases.iter().enumerate() {
                    let overheads: Vec<f64> = (0..s_len)
                        .map(|si| {
                            let group = ((pi * i_len + ii) * c_len + ci) * s_len + si;
                            let j = plan.job_index(group, Some(mi), mechs.len());
                            records[j].overhead.expect("mechanism job has overhead")
                        })
                        .collect();
                    let m = mean(&overheads);
                    case_means.push(m);
                    cells.push(CellSummary {
                        label: label.clone(),
                        series: mechanism.label().to_string(),
                        predictor: predictor.label().to_string(),
                        interval: interval.label().to_string(),
                        case_id: case.id.clone(),
                        mean: m,
                        stddev: stddev(&overheads),
                        n: spec.seeds,
                    });
                }
                series.push(SeriesSummary {
                    label,
                    series: mechanism.label().to_string(),
                    predictor: predictor.label().to_string(),
                    interval: interval.label().to_string(),
                    mean: mean(&case_means),
                });
            }
        }
    }

    let hw = spec
        .predictors
        .iter()
        .flat_map(|&p| mechs.iter().map(move |&m| hw_cell(spec, p, m)))
        .collect();

    SweepReport {
        name: spec.name.clone(),
        mode: spec.mode.label().to_string(),
        core: spec.core.name.to_string(),
        case_ids: spec.cases.iter().map(|c| c.id.clone()).collect(),
        records,
        cells,
        series,
        hw,
    }
}

/// Display label of one series column: the mechanism name, qualified with
/// the predictor when the sweep has several and the interval when the
/// sweep has several.
fn series_label(
    spec: &SweepSpec,
    predictor: PredictorKind,
    mechanism: Mechanism,
    interval: &str,
) -> String {
    let mut label = String::new();
    if spec.predictors.len() > 1 {
        label.push_str(predictor.label());
        label.push('/');
    }
    label.push_str(mechanism.label());
    if spec.intervals.len() > 1 {
        label.push('-');
        label.push_str(interval);
    }
    label
}

/// Joins the `sbp-hwcost` storage/area/timing figures for one
/// (predictor, mechanism) cell.
///
/// Storage bits come from the core's BTB geometry and the predictor's own
/// accounting; Precise Flush charges the 8-bit owner tags the tables
/// model, and the XOR family charges the per-thread key registers plus the
/// worst protected macro's analytical area/timing overhead.
/// The dominant direction-table macro of each predictor — what the XOR
/// overlay's critical path actually runs through (the paper's Table 5
/// geometries for the TAGE family, the counter arrays for the rest).
fn pht_geometry(predictor: PredictorKind) -> PhtGeometry {
    match predictor {
        // 8192 × 2-bit gshare counter array (Gshare::paper_2kb).
        PredictorKind::Gshare => PhtGeometry {
            entries: 8192,
            entry_bits: 2,
        },
        // The Alpha-style tournament's 8192-entry global table dominates.
        PredictorKind::Tournament => PhtGeometry {
            entries: 8192,
            entry_bits: 2,
        },
        // Both TAGE-family predictors read 4096-entry tagged tables
        // (TageConfig: log_entries = 12).
        PredictorKind::Ltage | PredictorKind::TageScL => PhtGeometry::tage(4096),
    }
}

fn hw_cell(spec: &SweepSpec, predictor: PredictorKind, mechanism: Mechanism) -> HwCell {
    let threads = match spec.mode {
        SweepMode::SingleCore => 1,
        SweepMode::Smt => spec
            .cases
            .iter()
            .map(|c| c.workloads.len())
            .max()
            .unwrap_or(2),
    };
    let btb_geom = BtbGeometry {
        entries_per_way: spec.core.btb.sets,
        ways: spec.core.btb.ways,
        tag_bits: spec.core.btb.tag_bits,
        target_bits: 32,
    };
    let btb_storage_bits = btb_geom.storage_bits();
    let pht_storage_bits = predictor.build(threads).storage_bits();
    let (added_bits, timing_overhead, area_overhead) = match mechanism {
        Mechanism::Baseline | Mechanism::CompleteFlush => (0, 0.0, 0.0),
        Mechanism::PreciseFlush => {
            let tagged = predictor.build_with_owner_tags(threads).storage_bits();
            let btb_entries = (spec.core.btb.sets * spec.core.btb.ways) as u64;
            (tagged - pht_storage_bits + btb_entries * 8, 0.0, 0.0)
        }
        Mechanism::Xor(cfg) => {
            let overlay = XorOverlay {
                threads,
                index_encoding: cfg.index_encoding,
            };
            let mut timing = 0.0f64;
            let mut area = 0.0f64;
            if cfg.protect_btb {
                let c = overlay.btb_cost(&btb_geom);
                timing = timing.max(c.timing_overhead());
                area = area.max(c.area_overhead());
            }
            if cfg.protect_pht {
                let c = overlay.pht_cost(&pht_geometry(predictor));
                timing = timing.max(c.timing_overhead());
                area = area.max(c.area_overhead());
            }
            (overlay.key_register_bits(), timing, area)
        }
    };
    HwCell {
        predictor: predictor.label().to_string(),
        series: mechanism.label().to_string(),
        btb_storage_bits,
        pht_storage_bits,
        added_bits,
        timing_overhead,
        area_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_sim::{SwitchInterval, WorkBudget};

    use crate::spec::CaseSpec;

    fn quick_spec() -> SweepSpec {
        SweepSpec::single("build test")
            .with_cases(vec![
                CaseSpec::pair("c1", "gcc", "calculix"),
                CaseSpec::pair("c2", "milc", "povray"),
            ])
            .with_intervals(vec![SwitchInterval::M4, SwitchInterval::M8])
            .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
            .with_budget(WorkBudget::quick())
            .with_seeds(2)
    }

    #[test]
    fn report_shape_matches_grid() {
        let spec = quick_spec();
        let report = spec.run().expect("sweep");
        // (M+1) jobs per group, groups = I·C·S.
        assert_eq!(report.records.len(), 3 * 2 * 2 * 2);
        // Cells: M·I·C; series: M·I.
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        assert_eq!(report.series.len(), 2 * 2);
        assert_eq!(report.case_ids, vec!["c1", "c2"]);
        for cell in &report.cells {
            assert_eq!(cell.n, 2);
            assert!(cell.mean.is_finite());
            assert!(cell.stddev >= 0.0);
        }
    }

    #[test]
    fn baseline_records_have_no_overhead_and_mechanisms_do() {
        let report = quick_spec().run().expect("sweep");
        for r in &report.records {
            if r.series == "Baseline" {
                assert!(r.overhead.is_none());
            } else {
                assert!(r.overhead.expect("overhead").is_finite());
            }
        }
    }

    #[test]
    fn labels_qualify_only_populated_axes() {
        let spec = quick_spec();
        assert_eq!(
            series_label(&spec, PredictorKind::Gshare, Mechanism::CompleteFlush, "4M"),
            "CF-4M"
        );
        let one_interval = quick_spec().with_intervals(vec![SwitchInterval::M8]);
        assert_eq!(
            series_label(
                &one_interval,
                PredictorKind::Gshare,
                Mechanism::CompleteFlush,
                "8M"
            ),
            "CF"
        );
        let multi_pred =
            quick_spec().with_predictors(vec![PredictorKind::Gshare, PredictorKind::TageScL]);
        assert_eq!(
            series_label(
                &multi_pred,
                PredictorKind::TageScL,
                Mechanism::noisy_xor_bp(),
                "4M"
            ),
            "TAGE_SC_L/Noisy-XOR-BP-4M"
        );
    }

    #[test]
    fn hw_join_charges_the_right_mechanisms() {
        let spec = quick_spec();
        let report = spec.run().expect("sweep");
        assert_eq!(report.hw.len(), 2); // one predictor × two mechanisms
        let cf = report.hw.iter().find(|h| h.series == "CF").expect("CF");
        assert_eq!(cf.added_bits, 0);
        assert_eq!(cf.timing_overhead, 0.0);
        let noisy = report
            .hw
            .iter()
            .find(|h| h.series == "Noisy-XOR-BP")
            .expect("noisy");
        assert_eq!(noisy.added_bits, 128); // one thread's key pair
        assert!(noisy.timing_overhead > 0.0);
        assert!(noisy.area_overhead > 0.0);
        assert!(noisy.btb_storage_bits > 0 && noisy.pht_storage_bits > 0);
    }

    #[test]
    fn hw_join_uses_per_predictor_pht_geometry() {
        // The XOR overlay's timing overhead depends on the macro it
        // wraps: TAGE's 4096 × 13-bit tagged tables differ from gshare's
        // 8192 × 2-bit counter array.
        let spec = quick_spec();
        let gshare = hw_cell(&spec, PredictorKind::Gshare, Mechanism::noisy_xor_pht());
        let tage = hw_cell(&spec, PredictorKind::TageScL, Mechanism::noisy_xor_pht());
        assert_ne!(gshare.timing_overhead, tage.timing_overhead);
        assert_ne!(gshare.area_overhead, tage.area_overhead);
    }

    #[test]
    fn precise_flush_charges_owner_tags() {
        let spec = quick_spec().with_mechanisms(vec![Mechanism::PreciseFlush]);
        let report = spec.run().expect("sweep");
        let pf = &report.hw[0];
        // 8-bit tags on each BTB entry at minimum.
        assert!(pf.added_bits >= (spec.core.btb.sets * spec.core.btb.ways * 8) as u64);
    }
}
