//! Aggregating raw run results into a [`SweepReport`].
//!
//! Simulation sweeps normalize every mechanism job against its group's
//! shared baseline and aggregate seed replicas into per-cell mean/stddev;
//! attack sweeps aggregate campaign success rates the same way, with the
//! attack label standing in for the benchmark case and the core-mode
//! label for the switch interval, so the report's cell/series/table
//! machinery serves both payloads.

use sbp_attack::AttackOutcome;
use sbp_core::Mechanism;
use sbp_hwcost::{BtbGeometry, PhtGeometry, XorOverlay};
use sbp_predictors::PredictorKind;
use sbp_types::report::{mean, stddev};
use sbp_types::{AttackRecord, CellSummary, HwCell, RunRecord, SeriesSummary, SweepReport};

use crate::exec::RawResult;
use crate::plan::SweepPlan;
use crate::spec::{PayloadSpec, SweepMode, SweepSpec};

/// Builds the structured report from a plan and its raw results (one
/// [`RawResult`] per planned job, in job order).
pub fn build_report(spec: &SweepSpec, plan: &SweepPlan, raw: &[RawResult]) -> SweepReport {
    assert_eq!(raw.len(), plan.jobs.len(), "one result per planned job");
    match &spec.payload {
        PayloadSpec::Sim => build_sim_report(spec, plan, raw),
        PayloadSpec::Attack(_) => build_attack_report(spec, plan, raw),
    }
}

fn build_sim_report(spec: &SweepSpec, plan: &SweepPlan, raw: &[RawResult]) -> SweepReport {
    let mechs = spec.series_mechanisms();

    // Baseline cycles per group (the shared divisor of every series).
    let mut base_cycles = vec![0.0f64; plan.groups.len()];
    for (j, job) in plan.jobs.iter().enumerate() {
        if let Some((group, Mechanism::Baseline)) = job.sim() {
            base_cycles[group] = raw[j].sim().expect("sim payload").cycles;
        }
    }

    let records: Vec<RunRecord> = plan
        .jobs
        .iter()
        .zip(raw)
        .map(|(job, result)| {
            let (group, mechanism) = job.sim().expect("sim plan holds sim jobs");
            let run = result.sim().expect("sim payload");
            let g = &plan.groups[group];
            let overhead = if mechanism == Mechanism::Baseline {
                None
            } else {
                Some(run.cycles / base_cycles[group] - 1.0)
            };
            RunRecord {
                series: mechanism.label().to_string(),
                predictor: g.predictor.label().to_string(),
                interval: g.interval.label().to_string(),
                case_id: spec.cases[g.case_index].id.clone(),
                seed_index: g.seed_index,
                seed: g.seed,
                cycles: run.cycles,
                overhead,
                stderr: run.stderr,
                stats: run.stats,
                per_thread: run.per_thread.clone(),
                attack: None,
            }
        })
        .collect();

    // Cells and series, column order: predictor-major, then mechanism,
    // then interval; rows are cases.
    let (i_len, c_len, s_len) = (spec.intervals.len(), spec.cases.len(), spec.seeds as usize);
    let mut cells = Vec::new();
    let mut series = Vec::new();
    for (pi, &predictor) in spec.predictors.iter().enumerate() {
        for (mi, &mechanism) in mechs.iter().enumerate() {
            for (ii, &interval) in spec.intervals.iter().enumerate() {
                let label = series_label(spec, predictor, mechanism.label(), interval.label());
                let mut case_means = Vec::with_capacity(c_len);
                for (ci, case) in spec.cases.iter().enumerate() {
                    let mut overheads = Vec::with_capacity(s_len);
                    // Propagated variance of the mean overhead: each
                    // replica's overhead m/b − 1 inherits variance from
                    // both the mechanism and baseline sampling stderrs
                    // (delta method); exact replicas contribute 0.
                    let mut var_sum = 0.0f64;
                    for si in 0..s_len {
                        let group = ((pi * i_len + ii) * c_len + ci) * s_len + si;
                        let r = &records[plan.job_index(group, Some(mi), mechs.len())];
                        let b = &records[plan.job_index(group, None, mechs.len())];
                        overheads.push(r.overhead.expect("mechanism job has overhead"));
                        if r.stderr.is_some() || b.stderr.is_some() {
                            let se_m = r.stderr.unwrap_or(0.0);
                            let se_b = b.stderr.unwrap_or(0.0);
                            let bc = b.cycles.max(1.0);
                            var_sum += (se_m / bc).powi(2) + (r.cycles * se_b / (bc * bc)).powi(2);
                        }
                    }
                    let m = mean(&overheads);
                    case_means.push(m);
                    cells.push(CellSummary {
                        label: label.clone(),
                        series: mechanism.label().to_string(),
                        predictor: predictor.label().to_string(),
                        interval: interval.label().to_string(),
                        case_id: case.id.clone(),
                        mean: m,
                        stddev: stddev(&overheads),
                        stderr: var_sum.sqrt() / s_len as f64,
                        n: spec.seeds,
                    });
                }
                series.push(SeriesSummary {
                    label,
                    series: mechanism.label().to_string(),
                    predictor: predictor.label().to_string(),
                    interval: interval.label().to_string(),
                    mean: mean(&case_means),
                });
            }
        }
    }

    let hw = spec
        .predictors
        .iter()
        .flat_map(|&p| mechs.iter().map(move |&m| hw_cell(spec, p, m)))
        .collect();

    SweepReport {
        name: spec.name.clone(),
        mode: spec.mode.label().to_string(),
        core: spec.core.name.to_string(),
        case_ids: spec.cases.iter().map(|c| c.id.clone()).collect(),
        records,
        cells,
        series,
        hw,
    }
}

/// Attack sweeps: rows are attack campaigns, columns are mechanism ×
/// core-mode series, cell values are campaign success rates.
fn build_attack_report(spec: &SweepSpec, plan: &SweepPlan, raw: &[RawResult]) -> SweepReport {
    let grid = spec.attack_grid().expect("attack payload");
    let records: Vec<RunRecord> = plan
        .jobs
        .iter()
        .zip(raw)
        .map(|(job, result)| {
            let a = job.attack().expect("attack plan holds attack jobs");
            let out = result.attack().expect("attack payload");
            let mode = if a.smt {
                SweepMode::Smt
            } else {
                SweepMode::SingleCore
            };
            RunRecord {
                series: a.mechanism.label().to_string(),
                predictor: a.predictor.label().to_string(),
                interval: mode.label().to_string(),
                case_id: a.attack.label().to_string(),
                seed_index: a.seed_index,
                seed: a.seed,
                cycles: 0.0,
                overhead: None,
                stderr: None,
                stats: Default::default(),
                per_thread: Vec::new(),
                attack: Some(AttackRecord {
                    attack: a.attack.label().to_string(),
                    success_rate: out.success_rate,
                    chance: out.chance,
                    trials: out.trials,
                    verdict: out.verdict().label().to_string(),
                }),
            }
        })
        .collect();

    // Plan order: predictor → mechanism → mode → attack → seed.
    let (m_len, o_len, a_len, s_len) = (
        spec.mechanisms.len(),
        grid.modes.len(),
        grid.attacks.len(),
        spec.seeds as usize,
    );
    let mut cells = Vec::new();
    let mut series = Vec::new();
    for (pi, &predictor) in spec.predictors.iter().enumerate() {
        for (mi, &mechanism) in spec.mechanisms.iter().enumerate() {
            for (oi, &mode) in grid.modes.iter().enumerate() {
                let label = series_label(spec, predictor, mechanism.label(), mode.label());
                let mut attack_means = Vec::with_capacity(a_len);
                for (ai, &attack) in grid.attacks.iter().enumerate() {
                    let rates: Vec<f64> = (0..s_len)
                        .map(|si| {
                            let j = (((pi * m_len + mi) * o_len + oi) * a_len + ai) * s_len + si;
                            records[j]
                                .attack
                                .as_ref()
                                .expect("attack record")
                                .success_rate
                        })
                        .collect();
                    let m = mean(&rates);
                    attack_means.push(m);
                    cells.push(CellSummary {
                        label: label.clone(),
                        series: mechanism.label().to_string(),
                        predictor: predictor.label().to_string(),
                        interval: mode.label().to_string(),
                        case_id: attack.label().to_string(),
                        mean: m,
                        stddev: stddev(&rates),
                        stderr: 0.0,
                        n: spec.seeds,
                    });
                }
                series.push(SeriesSummary {
                    label,
                    series: mechanism.label().to_string(),
                    predictor: predictor.label().to_string(),
                    interval: mode.label().to_string(),
                    mean: mean(&attack_means),
                });
            }
        }
    }

    SweepReport {
        name: spec.name.clone(),
        mode: "attack".to_string(),
        core: spec.core.name.to_string(),
        case_ids: grid.attacks.iter().map(|a| a.label().to_string()).collect(),
        records,
        cells,
        series,
        hw: Vec::new(),
    }
}

/// Seed-aggregated [`AttackOutcome`] of one attack cell — success rates
/// averaged over replicas, for verdict classification at cell granularity.
pub fn attack_cell_outcome(
    report: &SweepReport,
    series: &str,
    predictor: &str,
    mode: &str,
    attack: &str,
) -> Option<AttackOutcome> {
    let cell = report.cell(series, predictor, mode, attack)?;
    // Replica 0 always exists when the cell does (cells aggregate
    // replicas 0..n); chance and per-replica trials are constant across
    // replicas of one campaign.
    let any = report
        .record(series, predictor, mode, attack, 0)?
        .attack
        .as_ref()?;
    Some(AttackOutcome {
        success_rate: cell.mean,
        chance: any.chance,
        trials: any.trials * cell.n as u64,
    })
}

/// Display label of one series column: the mechanism name, qualified with
/// the predictor when the sweep has several, and the secondary axis
/// (switch interval / core mode) when the sweep has several.
fn series_label(spec: &SweepSpec, predictor: PredictorKind, mechanism: &str, axis: &str) -> String {
    let axis_len = match &spec.payload {
        PayloadSpec::Sim => spec.intervals.len(),
        PayloadSpec::Attack(grid) => grid.modes.len(),
    };
    let mut label = String::new();
    if spec.predictors.len() > 1 {
        label.push_str(predictor.label());
        label.push('/');
    }
    label.push_str(mechanism);
    if axis_len > 1 {
        label.push('-');
        label.push_str(axis);
    }
    label
}

/// Joins the `sbp-hwcost` storage/area/timing figures for one
/// (predictor, mechanism) cell.
///
/// Storage bits come from the core's BTB geometry and the predictor's own
/// accounting; Precise Flush charges the 8-bit owner tags the tables
/// model, and the XOR family charges the per-thread key registers plus the
/// worst protected macro's analytical area/timing overhead. The protected
/// direction-table macro is derived from the predictor's own configuration
/// ([`PredictorKind::dominant_direction_macro`]), so the cost geometry can
/// never drift from the simulated tables.
fn pht_geometry(predictor: PredictorKind) -> PhtGeometry {
    let (entries, entry_bits) = predictor.dominant_direction_macro();
    PhtGeometry {
        entries,
        entry_bits,
    }
}

fn hw_cell(spec: &SweepSpec, predictor: PredictorKind, mechanism: Mechanism) -> HwCell {
    let threads = match spec.mode {
        SweepMode::SingleCore => 1,
        SweepMode::Smt => spec
            .cases
            .iter()
            .map(|c| c.workloads.len())
            .max()
            .unwrap_or(2),
    };
    let btb_geom = BtbGeometry {
        entries_per_way: spec.core.btb.sets,
        ways: spec.core.btb.ways,
        tag_bits: spec.core.btb.tag_bits,
        target_bits: 32,
    };
    let btb_storage_bits = btb_geom.storage_bits();
    let pht_storage_bits = predictor.build(threads).storage_bits();
    let (added_bits, timing_overhead, area_overhead) = match mechanism {
        Mechanism::Baseline | Mechanism::CompleteFlush => (0, 0.0, 0.0),
        Mechanism::PreciseFlush => {
            let tagged = predictor.build_with_owner_tags(threads).storage_bits();
            let btb_entries = (spec.core.btb.sets * spec.core.btb.ways) as u64;
            (tagged - pht_storage_bits + btb_entries * 8, 0.0, 0.0)
        }
        Mechanism::Xor(cfg) => {
            let overlay = XorOverlay {
                threads,
                index_encoding: cfg.index_encoding,
            };
            let mut timing = 0.0f64;
            let mut area = 0.0f64;
            if cfg.protect_btb {
                let c = overlay.btb_cost(&btb_geom);
                timing = timing.max(c.timing_overhead());
                area = area.max(c.area_overhead());
            }
            if cfg.protect_pht {
                let c = overlay.pht_cost(&pht_geometry(predictor));
                timing = timing.max(c.timing_overhead());
                area = area.max(c.area_overhead());
            }
            (overlay.key_register_bits(), timing, area)
        }
    };
    HwCell {
        predictor: predictor.label().to_string(),
        series: mechanism.label().to_string(),
        btb_storage_bits,
        pht_storage_bits,
        added_bits,
        timing_overhead,
        area_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_attack::AttackKind;
    use sbp_sim::{SwitchInterval, WorkBudget};

    use crate::spec::CaseSpec;

    fn quick_spec() -> SweepSpec {
        SweepSpec::single("build test")
            .with_cases(vec![
                CaseSpec::pair("c1", "gcc", "calculix"),
                CaseSpec::pair("c2", "milc", "povray"),
            ])
            .with_intervals(vec![SwitchInterval::M4, SwitchInterval::M8])
            .with_mechanisms(vec![Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()])
            .with_budget(WorkBudget::quick())
            .with_seeds(2)
    }

    fn quick_attack_spec() -> SweepSpec {
        SweepSpec::attack("attack build test")
            .with_attacks(vec![AttackKind::SpectreV2, AttackKind::BranchScope])
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::noisy_xor_bp()])
            .with_trials(200)
    }

    #[test]
    fn report_shape_matches_grid() {
        let spec = quick_spec();
        let report = spec.run().expect("sweep");
        // (M+1) jobs per group, groups = I·C·S.
        assert_eq!(report.records.len(), 3 * 2 * 2 * 2);
        // Cells: M·I·C; series: M·I.
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        assert_eq!(report.series.len(), 2 * 2);
        assert_eq!(report.case_ids, vec!["c1", "c2"]);
        for cell in &report.cells {
            assert_eq!(cell.n, 2);
            assert!(cell.mean.is_finite());
            assert!(cell.stddev >= 0.0);
        }
    }

    #[test]
    fn baseline_records_have_no_overhead_and_mechanisms_do() {
        let report = quick_spec().run().expect("sweep");
        for r in &report.records {
            if r.series == "Baseline" {
                assert!(r.overhead.is_none());
            } else {
                assert!(r.overhead.expect("overhead").is_finite());
            }
            assert!(r.attack.is_none(), "sim sweeps carry no attack payload");
        }
    }

    #[test]
    fn sampled_sweeps_propagate_stderr_and_exact_sweeps_stay_zero() {
        let exact = quick_spec().run().expect("sweep");
        for r in &exact.records {
            assert!(r.stderr.is_none(), "exact runs carry no stderr");
        }
        for c in &exact.cells {
            assert_eq!(c.stderr, 0.0);
        }
        let sampled = quick_spec()
            .with_sampling(Some(sbp_sim::SamplingPlan::quick()))
            .run()
            .expect("sampled sweep");
        for r in &sampled.records {
            let se = r.stderr.expect("sampled runs carry a stderr");
            assert!(se.is_finite() && se >= 0.0);
        }
        for c in &sampled.cells {
            assert!(
                c.stderr > 0.0 && c.stderr.is_finite(),
                "cell {}/{} has no propagated stderr",
                c.label,
                c.case_id
            );
        }
    }

    #[test]
    fn smt_records_carry_per_thread_breakdowns() {
        let spec = SweepSpec::smt("smt build test")
            .with_cases(vec![CaseSpec::pair("c1", "zeusmp", "lbm")])
            .with_mechanisms(vec![Mechanism::CompleteFlush])
            .with_budget(WorkBudget::quick());
        let report = spec.run().expect("sweep");
        for r in &report.records {
            assert_eq!(r.per_thread.len(), 2);
            let summed: u64 = r.per_thread.iter().map(|t| t.instructions).sum();
            assert_eq!(summed, r.stats.instructions);
            assert!(r.thread_imbalance().expect("smt imbalance") >= 1.0);
        }
    }

    #[test]
    fn attack_report_rows_are_attacks_and_columns_mechanism_modes() {
        let spec = quick_attack_spec();
        let report = spec.run().expect("attack sweep");
        assert_eq!(report.mode, "attack");
        assert_eq!(report.case_ids, vec!["SpectreV2", "BranchScope"]);
        // mechanisms × modes × attacks cells; mechanisms × modes series.
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        assert_eq!(report.series.len(), 2 * 2);
        assert_eq!(report.records.len(), 2 * 2 * 2);
        assert!(report.hw.is_empty());
        for r in &report.records {
            let a = r.attack.as_ref().expect("attack record");
            assert_eq!(a.trials, 200);
            assert!(!a.verdict.is_empty());
            assert!(r.overhead.is_none());
        }
        // Baseline single-core SpectreV2 succeeds; Noisy-XOR-BP defends.
        let base = report
            .cell("Baseline", "Gshare", "single-core", "SpectreV2")
            .expect("cell");
        let noisy = report
            .cell("Noisy-XOR-BP", "Gshare", "single-core", "SpectreV2")
            .expect("cell");
        assert!(base.mean > 0.9, "baseline accuracy {}", base.mean);
        assert!(noisy.mean < 0.05, "defended accuracy {}", noisy.mean);
    }

    #[test]
    fn attack_cell_outcome_classifies_at_cell_granularity() {
        let report = quick_attack_spec().run().expect("attack sweep");
        let base = attack_cell_outcome(&report, "Baseline", "Gshare", "single-core", "SpectreV2")
            .expect("outcome");
        assert_eq!(base.verdict(), sbp_attack::Verdict::NoProtection);
        let noisy = attack_cell_outcome(
            &report,
            "Noisy-XOR-BP",
            "Gshare",
            "single-core",
            "SpectreV2",
        )
        .expect("outcome");
        assert_eq!(noisy.verdict(), sbp_attack::Verdict::Defend);
        assert!(attack_cell_outcome(&report, "PF", "Gshare", "single-core", "SpectreV2").is_none());
    }

    #[test]
    fn labels_qualify_only_populated_axes() {
        let spec = quick_spec();
        assert_eq!(
            series_label(&spec, PredictorKind::Gshare, "CF", "4M"),
            "CF-4M"
        );
        let one_interval = quick_spec().with_intervals(vec![SwitchInterval::M8]);
        assert_eq!(
            series_label(&one_interval, PredictorKind::Gshare, "CF", "8M"),
            "CF"
        );
        let multi_pred =
            quick_spec().with_predictors(vec![PredictorKind::Gshare, PredictorKind::TageScL]);
        assert_eq!(
            series_label(&multi_pred, PredictorKind::TageScL, "Noisy-XOR-BP", "4M"),
            "TAGE_SC_L/Noisy-XOR-BP-4M"
        );
        // Attack sweeps qualify with the core mode.
        let attack = quick_attack_spec();
        assert_eq!(
            series_label(&attack, PredictorKind::Gshare, "CF", "smt"),
            "CF-smt"
        );
        let one_mode = quick_attack_spec().with_attack_modes(vec![crate::spec::SweepMode::Smt]);
        assert_eq!(
            series_label(&one_mode, PredictorKind::Gshare, "CF", "smt"),
            "CF"
        );
    }

    #[test]
    fn hw_join_charges_the_right_mechanisms() {
        let spec = quick_spec();
        let report = spec.run().expect("sweep");
        assert_eq!(report.hw.len(), 2); // one predictor × two mechanisms
        let cf = report.hw.iter().find(|h| h.series == "CF").expect("CF");
        assert_eq!(cf.added_bits, 0);
        assert_eq!(cf.timing_overhead, 0.0);
        let noisy = report
            .hw
            .iter()
            .find(|h| h.series == "Noisy-XOR-BP")
            .expect("noisy");
        assert_eq!(noisy.added_bits, 128); // one thread's key pair
        assert!(noisy.timing_overhead > 0.0);
        assert!(noisy.area_overhead > 0.0);
        assert!(noisy.btb_storage_bits > 0 && noisy.pht_storage_bits > 0);
    }

    #[test]
    fn hw_join_uses_the_derived_pht_geometry() {
        // The XOR overlay's timing overhead depends on the macro it
        // wraps; the geometry now comes straight from the predictor
        // config structs, so it must match dominant_direction_macro.
        for kind in PredictorKind::ALL {
            let g = pht_geometry(kind);
            assert_eq!(
                (g.entries, g.entry_bits),
                kind.dominant_direction_macro(),
                "{kind}"
            );
        }
        let spec = quick_spec();
        let gshare = hw_cell(&spec, PredictorKind::Gshare, Mechanism::noisy_xor_pht());
        let tage = hw_cell(&spec, PredictorKind::TageScL, Mechanism::noisy_xor_pht());
        assert_ne!(gshare.timing_overhead, tage.timing_overhead);
        assert_ne!(gshare.area_overhead, tage.area_overhead);
    }

    #[test]
    fn precise_flush_charges_owner_tags() {
        let spec = quick_spec().with_mechanisms(vec![Mechanism::PreciseFlush]);
        let report = spec.run().expect("sweep");
        let pf = &report.hw[0];
        // 8-bit tags on each BTB entry at minimum.
        assert!(pf.added_bits >= (spec.core.btb.sets * spec.core.btb.ways * 8) as u64);
    }
}
