//! # sbp-sweep
//!
//! The declarative sweep engine: every figure and table of the paper is a
//! grid sweep, and this crate turns such a grid — a [`SweepSpec`] — into
//! a deterministic job plan, executes it on a work-stealing thread pool
//! and aggregates the results into a serializable
//! [`SweepReport`](sbp_types::SweepReport). Two job payloads run under
//! the same spine: **simulation** grids (mechanism × predictor × switch
//! interval × benchmark case × seed; figures 1–3/7–10, tables 4/5) and
//! **attack-PoC** grids (attack × mechanism × predictor × core mode ×
//! seed; Table 1, §5.5).
//!
//! The pipeline has four stages, each usable on its own:
//!
//! 1. **spec** ([`SweepSpec`]) — the declarative grid plus core config,
//!    mode and work budget; [`SweepSpec::attack`] selects the attack
//!    payload;
//! 2. **plan** ([`plan::plan`]) — the flat polymorphic [`Job`] list. Sim
//!    grids are deduplicated: exactly one baseline simulation per
//!    (predictor, interval, case, seed) group is shared by every
//!    mechanism series, so `M` mechanisms cost `M + 1` simulations per
//!    group instead of the `2·M` the old per-series helpers paid;
//!    per-group seeds come from
//!    [`SplitMix64::derive`](sbp_types::rng::SplitMix64::derive);
//! 3. **exec** ([`exec::execute`], [`exec::parallel_map`]) — parallel
//!    execution in plan order;
//! 4. **build** ([`build::build_report`]) — normalized overheads (or
//!    attack success rates), seed-aggregated mean/stddev per cell,
//!    per-series averages and the `sbp-hwcost` storage/area/timing join,
//!    with JSON-lines, CSV and aligned-table emitters on the report.
//!
//! On top of the plan sits the persistence layer: [`SweepSpec::run_with`]
//! records every completed cell in a [`store::SweepStore`] (JSONL keyed by
//! a stable job fingerprint) and skips stored cells on re-runs (resume), a
//! [`run::Shard`] filter splits one spec across processes/machines, and
//! [`run::merge_stores`] recombines shard stores into a report that is
//! byte-identical to a single-process run.
//!
//! Finally the **verdict** layer ([`verdict::check_report`]) joins a
//! report against a list of paper [`verdict::Expectation`]s — means
//! within (scale-widened) tolerance, one-sided bounds, direction
//! constraints, Table 1 security verdicts — into a
//! [`verdict::VerdictTable`] with the same aligned-table/JSONL/CSV
//! emitters as the report, turning "reproduces the paper" into a
//! machine-checked property.
//!
//! ```
//! use sbp_core::Mechanism;
//! use sbp_sim::{SwitchInterval, WorkBudget};
//! use sbp_sweep::{CaseSpec, SweepSpec};
//!
//! # fn main() -> Result<(), sbp_types::SbpError> {
//! let report = SweepSpec::single("quick demo")
//!     .with_cases(vec![CaseSpec::pair("c1", "gcc", "calculix")])
//!     .with_intervals(vec![SwitchInterval::M8])
//!     .with_mechanisms(vec![Mechanism::CompleteFlush])
//!     .with_budget(WorkBudget::quick())
//!     .run()?;
//! assert_eq!(report.records.len(), 2); // one baseline + one mechanism
//! assert!(report.series_mean("CF", "Gshare", "8M").is_some());
//!
//! // The same engine drives the security matrix:
//! let matrix = SweepSpec::attack("spectre check")
//!     .with_attacks(vec![sbp_attack::AttackKind::SpectreV2])
//!     .with_attack_modes(vec![sbp_sweep::SweepMode::SingleCore])
//!     .with_mechanisms(vec![Mechanism::Baseline, Mechanism::noisy_xor_bp()])
//!     .with_trials(300)
//!     .run()?;
//! let verdicts: Vec<&str> = matrix
//!     .records
//!     .iter()
//!     .map(|r| r.attack.as_ref().unwrap().verdict.as_str())
//!     .collect();
//! assert_eq!(verdicts, ["No Protection", "Defend"]);
//! # Ok(())
//! # }
//! ```

pub mod build;
pub mod exec;
pub mod json;
pub mod plan;
pub mod run;
pub mod spec;
pub mod store;
pub mod verdict;

pub use build::{attack_cell_outcome, build_report};
pub use exec::{
    execute, job_label, parallel_map, parallel_map_with, run_job, run_job_in, run_job_indexed,
    set_window_threads, window_threads, JobArena, RawResult, RawRun,
};
pub use plan::{plan, AttackJob, Job, JobGroup, SweepPlan};
pub use run::{gc_store, merge_stores, RunOptions, Shard, SweepOutcome};
pub use sbp_attack::AttackKind;
pub use spec::{cases_from, AttackGridSpec, CaseSpec, PayloadSpec, SweepMode, SweepSpec};
pub use store::{job_fingerprint, plan_fingerprints, SweepStore};
pub use verdict::{
    check_report, check_report_at, widen_factor, CheckRow, CheckStatus, Expectation, SeriesKey,
    VerdictTable,
};
