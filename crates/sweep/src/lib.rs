//! # sbp-sweep
//!
//! The declarative sweep engine: every figure and table of the paper is a
//! grid sweep (mechanism × predictor × switch interval × benchmark case ×
//! seed), and this crate turns such a grid — a [`SweepSpec`] — into a
//! deduplicated job plan, executes it on a work-stealing thread pool and
//! aggregates the results into a serializable
//! [`SweepReport`](sbp_types::SweepReport).
//!
//! The pipeline has four stages, each usable on its own:
//!
//! 1. **spec** ([`SweepSpec`]) — the declarative grid plus core config,
//!    mode and work budget;
//! 2. **plan** ([`plan::plan`]) — the deduplicated job list: exactly one
//!    baseline simulation per (predictor, interval, case, seed) group is
//!    shared by every mechanism series, so `M` mechanisms cost `M + 1`
//!    simulations per group instead of the `2·M` the old per-series
//!    helpers paid; per-group seeds come from
//!    [`SplitMix64::derive`](sbp_types::rng::SplitMix64::derive);
//! 3. **exec** ([`exec::execute`], [`exec::parallel_map`]) — parallel
//!    execution in plan order;
//! 4. **build** ([`build::build_report`]) — normalized overheads,
//!    seed-aggregated mean/stddev per cell, per-series case averages and
//!    the `sbp-hwcost` storage/area/timing join, with JSON-lines, CSV and
//!    aligned-table emitters on the report.
//!
//! ```
//! use sbp_core::Mechanism;
//! use sbp_sim::{SwitchInterval, WorkBudget};
//! use sbp_sweep::{CaseSpec, SweepSpec};
//!
//! # fn main() -> Result<(), sbp_types::SbpError> {
//! let report = SweepSpec::single("quick demo")
//!     .with_cases(vec![CaseSpec::pair("c1", "gcc", "calculix")])
//!     .with_intervals(vec![SwitchInterval::M8])
//!     .with_mechanisms(vec![Mechanism::CompleteFlush])
//!     .with_budget(WorkBudget::quick())
//!     .run()?;
//! assert_eq!(report.records.len(), 2); // one baseline + one mechanism
//! assert!(report.series_mean("CF", "Gshare", "8M").is_some());
//! # Ok(())
//! # }
//! ```

pub mod build;
pub mod exec;
pub mod plan;
pub mod spec;

pub use build::build_report;
pub use exec::{execute, parallel_map, RawRun};
pub use plan::{plan, Job, JobGroup, SweepPlan};
pub use spec::{cases_from, CaseSpec, SweepMode, SweepSpec};
