//! Parallel plan execution on a work-stealing thread pool.
//!
//! Simulation jobs run through a process-wide **warm-state checkpoint
//! cache**: the first job of a (core, mode, predictor, mechanism, case,
//! seed, warmup) group warms a simulator from scratch and snapshots it
//! ([`SingleCoreSim::try_clone`]); later jobs of the same group — the
//! other points of the interval axis — restore the snapshot and re-aim
//! its timer (`retarget_interval`) instead of re-simulating warmup.
//! Restores are bit-identical to uninterrupted runs, so caching is
//! invisible in the results (and therefore in store bytes).
//!
//! When the spec carries a [`SamplingPlan`], jobs additionally share a
//! **window-measurement cache**: the stratified window run is
//! interval-independent (see [`sbp_sim::sampling`]), so one sampled run
//! per (group, mechanism) serves every interval via the analytic
//! estimator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use sbp_attack::AttackOutcome;
use sbp_core::Mechanism;
use sbp_sim::{estimate_cycles, SampledMeasurement, SamplingPlan, SingleCoreSim, SmtSim};
use sbp_trace::EventBuffer;
use sbp_types::{PredictionStats, SbpError};

use crate::plan::{Job, JobGroup, SweepPlan};
use crate::spec::{SweepMode, SweepSpec};

/// Per-worker scratch reused across jobs.
///
/// Each simulation job needs one batch [`EventBuffer`] per software
/// context; an arena keeps those allocations alive between the cells a
/// worker executes, so long (or resumed) campaigns don't re-allocate
/// batch storage per cell. Results are identical with or without an
/// arena — buffers are recycled empty.
#[derive(Debug, Default)]
pub struct JobArena {
    buffers: Vec<EventBuffer>,
}

impl JobArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        JobArena::default()
    }

    /// Number of pooled event buffers (observability for tests).
    pub fn pooled_buffers(&self) -> usize {
        self.buffers.len()
    }
}

/// Raw outcome of one executed simulation job.
#[derive(Debug, Clone, PartialEq)]
pub struct RawRun {
    /// Measured cycles: the target's cycles on the single-core mode, wall
    /// cycles across threads on SMT. Sampled jobs record the weighted
    /// estimate for the full measurement budget.
    pub cycles: f64,
    /// Prediction statistics (summed across hardware threads for SMT).
    pub stats: PredictionStats,
    /// Per-hardware-thread statistics (SMT runs; empty on single-core).
    pub per_thread: Vec<PredictionStats>,
    /// Standard error of `cycles` propagated from the sampling windows;
    /// `None` on the exact path (which has no sampling uncertainty).
    pub stderr: Option<f64>,
}

/// Raw outcome of one executed job — the execution-side mirror of the
/// plan's polymorphic [`Job`] payload, and the unit the sweep store
/// persists.
#[derive(Debug, Clone, PartialEq)]
pub enum RawResult {
    /// A simulation outcome.
    Sim(RawRun),
    /// An attack-campaign outcome.
    Attack(AttackOutcome),
}

impl RawResult {
    /// The simulation outcome, if this is one.
    pub fn sim(&self) -> Option<&RawRun> {
        match self {
            RawResult::Sim(run) => Some(run),
            RawResult::Attack(_) => None,
        }
    }

    /// The attack outcome, if this is one.
    pub fn attack(&self) -> Option<&AttackOutcome> {
        match self {
            RawResult::Attack(out) => Some(out),
            RawResult::Sim(_) => None,
        }
    }
}

/// Intra-worker window-parallelism width; `0` means "not yet resolved"
/// and resolves lazily from `SBP_WINDOW_THREADS` (default 1 — serial).
static WINDOW_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the intra-worker window-parallelism width for sampled jobs:
/// with `n > 1`, the independent measurement windows of one sampled
/// cell fan out across `n` threads (each window runs on its own clone
/// of the shared warm checkpoint). Values below 1 clamp to 1 (serial).
/// Results are bit-identical at any width.
pub fn set_window_threads(n: usize) {
    WINDOW_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Current intra-worker window-parallelism width: the last
/// [`set_window_threads`] value, else the `SBP_WINDOW_THREADS`
/// environment variable, else 1 (serial).
pub fn window_threads() -> usize {
    match WINDOW_THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("SBP_WINDOW_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
            WINDOW_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Runs `f(i)` for `i in 0..n` on a pool of worker threads (one per
/// available core) and returns the results in index order.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, || (), |(), i| f(i))
}

/// Like [`parallel_map`], but each worker thread owns a scratch state
/// built by `init` and passed to every `f` call it executes — the hook
/// the per-worker [`JobArena`] rides on.
pub fn parallel_map_with<S, T, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    parallel_map_bounded_with(n, workers, init, f)
}

/// [`parallel_map_with`] with an explicit worker-thread bound — the
/// window fan-out uses this so `--window-threads` controls pool width
/// independently of core count.
fn parallel_map_bounded_with<S, T, I, F>(n: usize, workers: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let results: Vec<parking_lot::Mutex<Option<T>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = workers.max(1).min(n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *results[i].lock() = Some(f(&mut scratch, i));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker completed"))
        .collect()
}

/// Executes every planned job in parallel; results are in plan job order.
///
/// # Errors
///
/// Returns the first unknown-workload or configuration error.
pub fn execute(spec: &SweepSpec, plan: &SweepPlan) -> Result<Vec<RawResult>, SbpError> {
    let results = parallel_map_with(plan.jobs.len(), JobArena::new, |arena, j| {
        run_job_indexed(arena, spec, plan, j)
    });
    results.into_iter().collect()
}

/// Human-readable identity of plan job `index` (telemetry span detail).
pub fn job_label(spec: &SweepSpec, plan: &SweepPlan, index: usize) -> String {
    match &plan.jobs[index] {
        Job::Attack(a) => format!(
            "attack={:?} mech={:?} predictor={:?} smt={} seed={}",
            a.attack, a.mechanism, a.predictor, a.smt, a.seed_index
        ),
        Job::Sim { group, mechanism } => {
            let g = &plan.groups[*group];
            format!(
                "case={} predictor={:?} mech={mechanism:?} interval={:?} seed={}",
                spec.cases[g.case_index].id, g.predictor, g.interval, g.seed_index
            )
        }
    }
}

/// [`run_job_in`] for plan job `index`, wrapped in a telemetry job
/// scope: the job gets a deterministic `job` span plus result-derived
/// counters/gauges, all keyed by the plan index so re-runs and shards
/// assign identical span IDs. With telemetry disabled this is exactly
/// [`run_job_in`] — results are bit-identical either way.
///
/// # Errors
///
/// Same as [`run_job`].
pub fn run_job_indexed(
    arena: &mut JobArena,
    spec: &SweepSpec,
    plan: &SweepPlan,
    index: usize,
) -> Result<RawResult, SbpError> {
    sbp_telemetry::job_scope(index as u64, || {
        let result = {
            let _span = sbp_telemetry::span("job", true, &job_label(spec, plan, index));
            let result = run_job_in(arena, spec, plan, &plan.jobs[index]);
            if let Ok(r) = &result {
                emit_result_events(r);
            }
            result
        };
        sbp_telemetry::gauge(
            "arena_pooled_buffers",
            arena.pooled_buffers() as f64,
            false,
            "",
        );
        result
    })
}

/// Deterministic result-derived telemetry: every value here is a pure
/// function of the job's (bit-exact) outcome, so the events survive
/// into the canonical projection.
fn emit_result_events(result: &RawResult) {
    match result {
        RawResult::Sim(run) => {
            sbp_telemetry::counter("branches_stepped", run.stats.cond_branches as f64, true, "");
            sbp_telemetry::counter("storm_events", run.stats.context_switches as f64, true, "");
            sbp_telemetry::gauge("cycles", run.cycles, true, "");
            if let Some(se) = run.stderr {
                sbp_telemetry::gauge("cycles_stderr", se, true, "");
            }
        }
        RawResult::Attack(out) => {
            sbp_telemetry::counter("trials", out.trials as f64, true, "");
            sbp_telemetry::gauge("success_rate", out.success_rate, true, "");
        }
    }
}

/// Executes one planned job (either payload kind). Exposed so external
/// drivers (the campaign worker's fault-injection path) can execute a
/// plan one job at a time; [`execute`] and `SweepSpec::run_with` remain
/// the whole-plan entry points.
///
/// # Errors
///
/// Returns unknown-workload or configuration errors (sim jobs; attack
/// jobs are infallible once planned).
pub fn run_job(spec: &SweepSpec, plan: &SweepPlan, job: &Job) -> Result<RawResult, SbpError> {
    run_job_in(&mut JobArena::new(), spec, plan, job)
}

/// [`run_job`] with a caller-owned [`JobArena`]: batch event buffers are
/// adopted from the arena before the run and released back afterwards, so
/// a worker looping over many cells reuses the same allocations.
///
/// # Errors
///
/// Same as [`run_job`].
pub fn run_job_in(
    arena: &mut JobArena,
    spec: &SweepSpec,
    plan: &SweepPlan,
    job: &Job,
) -> Result<RawResult, SbpError> {
    let (group, mechanism) = match job {
        Job::Attack(a) => {
            return Ok(RawResult::Attack(a.attack.run(
                a.mechanism,
                a.predictor,
                a.smt,
                a.trials,
                a.seed,
            )))
        }
        Job::Sim { group, mechanism } => (&plan.groups[*group], *mechanism),
    };
    if let Some(sampling) = &spec.sampling {
        return run_sampled_job(arena, spec, group, mechanism, sampling);
    }
    match spec.mode {
        SweepMode::SingleCore => {
            let (mut sim, from_cache) = warm_single(arena, spec, group, mechanism)?;
            let stats = sim.run_measure(spec.budget.measure);
            if !from_cache {
                sim.release_buffers(&mut arena.buffers);
            }
            Ok(RawResult::Sim(RawRun {
                cycles: stats.cycles as f64,
                stats,
                per_thread: Vec::new(),
                stderr: None,
            }))
        }
        SweepMode::Smt => {
            let (mut sim, from_cache) = warm_smt(arena, spec, group, mechanism)?;
            let result = sim.run_measure(spec.budget.measure);
            if !from_cache {
                sim.release_buffers(&mut arena.buffers);
            }
            let mut stats = PredictionStats::new();
            for t in &result.per_thread {
                stats += *t;
            }
            stats.cycles = result.cycles as u64;
            Ok(RawResult::Sim(RawRun {
                cycles: result.cycles,
                stats,
                per_thread: result.per_thread,
                stderr: None,
            }))
        }
    }
}

/// A warm-state checkpoint: one simulator snapshotted right after its
/// warm-up phase, before any timer switch has fired.
enum WarmSim {
    Single(SingleCoreSim),
    Smt(SmtSim),
}

/// Caches are bounded by wholesale clearing: eviction order must not
/// depend on thread scheduling, and a full clear keeps refills
/// deterministic in what they recompute (results are identical either
/// way — restores are bit-identical to fresh runs).
const CACHE_CAP: usize = 256;

fn warm_cache() -> &'static Mutex<HashMap<String, WarmSim>> {
    static CACHE: OnceLock<Mutex<HashMap<String, WarmSim>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn window_cache() -> &'static Mutex<HashMap<String, SampledMeasurement>> {
    static CACHE: OnceLock<Mutex<HashMap<String, SampledMeasurement>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cache_insert<T>(map: &mut HashMap<String, T>, key: String, value: T) {
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(key, value);
}

/// Identity of a warm-up, *excluding* the switch interval: warm-ups are
/// interval-independent as long as no timer fired (checked before the
/// checkpoint is stored), which is what lets one warm state serve the
/// whole interval axis.
fn warm_key(spec: &SweepSpec, group: &JobGroup, mechanism: Mechanism) -> String {
    let case = &spec.cases[group.case_index];
    format!(
        "core={:?}|mode={}|predictor={}|workloads={}|mechanism={mechanism:?}|seed={}|warmup={}",
        spec.core,
        spec.mode.label(),
        group.predictor,
        case.workloads.join("+"),
        group.seed,
        spec.budget.warmup,
    )
}

/// Returns a warmed single-core simulator for this job and whether it
/// came from the checkpoint cache (cache restores own their buffers and
/// bypass the arena). Falls back to a fresh warm-up when no checkpoint
/// fits; checkpoints are stored only when the warm-up saw no timer
/// switch, so every restore is bit-identical to a fresh run.
fn warm_single(
    arena: &mut JobArena,
    spec: &SweepSpec,
    group: &JobGroup,
    mechanism: Mechanism,
) -> Result<(SingleCoreSim, bool), SbpError> {
    let key = warm_key(spec, group, mechanism);
    if let Some(WarmSim::Single(w)) = warm_cache().lock().get(&key) {
        if let Some(mut clone) = w.try_clone() {
            if clone.retarget_interval(group.interval) {
                sbp_telemetry::counter("warm_cache_hit", 1.0, false, "");
                return Ok((clone, true));
            }
        }
    }
    sbp_telemetry::counter("warm_cache_miss", 1.0, false, "");
    let case = &spec.cases[group.case_index];
    let workloads: Vec<&str> = case.workloads.iter().map(String::as_str).collect();
    let mut sim = SingleCoreSim::new(
        spec.core,
        group.predictor,
        mechanism,
        group.interval,
        &workloads,
        group.seed,
    )?;
    sim.adopt_buffers(&mut arena.buffers);
    sim.warm(spec.budget.warmup);
    if sim.context_switches() == 0 {
        if let Some(snapshot) = sim.try_clone() {
            cache_insert(&mut warm_cache().lock(), key, WarmSim::Single(snapshot));
        }
    }
    Ok((sim, false))
}

/// SMT counterpart of [`warm_single`].
fn warm_smt(
    arena: &mut JobArena,
    spec: &SweepSpec,
    group: &JobGroup,
    mechanism: Mechanism,
) -> Result<(SmtSim, bool), SbpError> {
    let key = warm_key(spec, group, mechanism);
    if let Some(WarmSim::Smt(w)) = warm_cache().lock().get(&key) {
        if let Some(mut clone) = w.try_clone() {
            if clone.retarget_interval(group.interval) {
                sbp_telemetry::counter("warm_cache_hit", 1.0, false, "");
                return Ok((clone, true));
            }
        }
    }
    sbp_telemetry::counter("warm_cache_miss", 1.0, false, "");
    let case = &spec.cases[group.case_index];
    let workloads: Vec<&str> = case.workloads.iter().map(String::as_str).collect();
    let mut sim = SmtSim::new(
        spec.core,
        group.predictor,
        mechanism,
        group.interval,
        &workloads,
        group.seed,
    )?;
    sim.adopt_buffers(&mut arena.buffers);
    sim.warm(spec.budget.warmup);
    if sim.context_switches() == 0 {
        if let Some(snapshot) = sim.try_clone() {
            cache_insert(&mut warm_cache().lock(), key, WarmSim::Smt(snapshot));
        }
    }
    Ok((sim, false))
}

/// Executes a sampled simulation job: the stratified window run is shared
/// across the interval axis through the window-measurement cache, and
/// the per-interval estimate is produced analytically.
fn run_sampled_job(
    arena: &mut JobArena,
    spec: &SweepSpec,
    group: &JobGroup,
    mechanism: Mechanism,
    sampling: &sbp_sim::SamplingPlan,
) -> Result<RawResult, SbpError> {
    if sampling.phase_windows > 0 {
        return run_phased_job(arena, spec, group, mechanism, sampling);
    }
    let mkey = format!(
        "{}|sampling={}",
        warm_key(spec, group, mechanism),
        sampling.fingerprint()
    );
    let cached = window_cache().lock().get(&mkey).cloned();
    let m = match cached {
        Some(m) => {
            sbp_telemetry::counter("window_cache_hit", 1.0, false, "");
            m
        }
        None => {
            sbp_telemetry::counter("window_cache_miss", 1.0, false, "");
            let threads = window_threads();
            let windowed = threads > 1 && sampling.total_windows() > 1;
            if windowed {
                sbp_telemetry::gauge("window_threads", threads as f64, false, "");
            }
            let m = match spec.mode {
                SweepMode::SingleCore => {
                    let (mut sim, from_cache) = warm_single(arena, spec, group, mechanism)?;
                    let m = if windowed {
                        run_single_windowed(&sim, sampling, threads)
                    } else {
                        None
                    };
                    let m = m.unwrap_or_else(|| sim.run_sampled(sampling));
                    if !from_cache {
                        sim.release_buffers(&mut arena.buffers);
                    }
                    m
                }
                SweepMode::Smt => {
                    let (mut sim, from_cache) = warm_smt(arena, spec, group, mechanism)?;
                    let m = if windowed {
                        run_smt_windowed(&sim, sampling, threads)
                    } else {
                        None
                    };
                    let m = m.unwrap_or_else(|| sim.run_sampled(sampling));
                    if !from_cache {
                        sim.release_buffers(&mut arena.buffers);
                    }
                    m
                }
            };
            cache_insert(&mut window_cache().lock(), mkey, m.clone());
            m
        }
    };
    Ok(finish_sampled(m, spec, group))
}

/// Shared tail of the sampled paths: per-window telemetry gauges and the
/// analytic full-budget estimate. The gauges are deterministic: `m` is
/// bit-identical whether it came from the cache, a serial run, or the
/// window fan-out, so every job of the group emits the same sequence.
fn finish_sampled(m: SampledMeasurement, spec: &SweepSpec, group: &JobGroup) -> RawResult {
    for (w, cycles) in m.steady_cycles.iter().enumerate() {
        sbp_telemetry::gauge(
            "steady_window_cycles",
            *cycles,
            true,
            &format!("window {w}"),
        );
    }
    for (w, cycles) in m.event_cycles.iter().enumerate() {
        sbp_telemetry::gauge("event_window_cycles", *cycles, true, &format!("window {w}"));
    }
    let est = estimate_cycles(&m, spec.budget.measure, group.interval);
    let mut stats = m.stats;
    stats.cycles = est.cycles as u64;
    RawResult::Sim(RawRun {
        cycles: est.cycles,
        stats,
        per_thread: m.per_thread,
        stderr: Some(est.stderr),
    })
}

fn phase_cache() -> &'static Mutex<HashMap<String, sbp_trace::PhaseSchedule>> {
    static CACHE: OnceLock<Mutex<HashMap<String, sbp_trace::PhaseSchedule>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Executes a sampled job whose steady windows are phase-clustered
/// representatives of a recorded trace (`SamplingPlan::phase_windows`).
/// The target workload must be a `replay:<workload>@<dir>` stream — the
/// clusterer reads the same on-disk trace the simulator replays, skipping
/// the warm-up prefix so schedule indices line up with the warm cursor.
/// Schedules are cached per (trace, skip, interval, k); the measurement
/// shares the ordinary window cache (the `p{k}` fingerprint token keeps
/// it disjoint from uniform-schedule entries).
fn run_phased_job(
    arena: &mut JobArena,
    spec: &SweepSpec,
    group: &JobGroup,
    mechanism: Mechanism,
    sampling: &sbp_sim::SamplingPlan,
) -> Result<RawResult, SbpError> {
    if spec.mode != SweepMode::SingleCore {
        return Err(SbpError::config(
            "phase-clustered sampling (phase_windows > 0) is single-core only",
        ));
    }
    let case = &spec.cases[group.case_index];
    let target = case.workloads.first().map(String::as_str).unwrap_or("");
    let Some((workload, dir)) = sbp_trace::parse_replay(target) else {
        return Err(SbpError::config(format!(
            "phase-clustered sampling needs a replay target \
             (`replay:<workload>@<dir>`), got `{target}`",
        )));
    };
    // Context 0 of the single-core sim: fixed base address, seed stream 0
    // (must match `SingleCoreSim::new`'s derivation).
    let path = sbp_trace::replay_trace_path(
        std::path::Path::new(dir),
        workload,
        0x1000_0000,
        sbp_types::rng::SplitMix64::derive(group.seed, 0),
    );
    // Branches the event-window stratum will consume after the last
    // clustered interval, plus one batch-refill of slack (the replayer
    // serves events in `EventBuffer` batches, so the simulator can pull
    // up to a batch beyond what it executes).
    let reserve = sampling.event_windows as u64
        * (sampling.gap + sampling.rewarm + sampling.event_window)
        + 2 * EventBuffer::DEFAULT_CAPACITY as u64;
    let skey = format!(
        "{}|skip={}|interval={}|k={}|reserve={}",
        path.display(),
        spec.budget.warmup,
        sampling.window,
        sampling.phase_windows,
        reserve,
    );
    let cached = phase_cache().lock().get(&skey).cloned();
    let schedule = match cached {
        Some(s) => s,
        None => {
            let s = sbp_trace::cluster_trace(
                &path,
                spec.budget.warmup,
                sampling.window,
                sampling.phase_windows as usize,
                reserve,
            )?;
            cache_insert(&mut phase_cache().lock(), skey, s.clone());
            s
        }
    };
    let mkey = format!(
        "{}|sampling={}",
        warm_key(spec, group, mechanism),
        sampling.fingerprint()
    );
    let cached = window_cache().lock().get(&mkey).cloned();
    let m = match cached {
        Some(m) => {
            sbp_telemetry::counter("window_cache_hit", 1.0, false, "");
            m
        }
        None => {
            sbp_telemetry::counter("window_cache_miss", 1.0, false, "");
            let (mut sim, from_cache) = warm_single(arena, spec, group, mechanism)?;
            let m = sim.run_phased(sampling, &schedule);
            if !from_cache {
                sim.release_buffers(&mut arena.buffers);
            }
            cache_insert(&mut window_cache().lock(), mkey, m.clone());
            m
        }
    };
    Ok(finish_sampled(m, spec, group))
}

/// Window fan-out for a single-core sampled cell: each of the plan's
/// measurement windows runs on its own clone of the warm checkpoint
/// (`SingleCoreSim::run_sampled_window`), and the per-window results are
/// reassembled into the [`SampledMeasurement`] the serial
/// `run_sampled` would have produced — bit-identically, because each
/// clone replays its prefix through the functional (state-exact) path.
/// Returns `None` when any window clone fails, so the caller falls back
/// to the serial run.
fn run_single_windowed(
    sim: &SingleCoreSim,
    plan: &SamplingPlan,
    threads: usize,
) -> Option<SampledMeasurement> {
    let n = plan.total_windows() as usize;
    let clones: Option<Vec<SingleCoreSim>> = (0..n).map(|_| sim.try_clone()).collect();
    let slots: Vec<Mutex<Option<SingleCoreSim>>> =
        clones?.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let runs = parallel_map_bounded_with(
        n,
        threads,
        || (),
        |(), i| {
            let mut solo = slots[i].lock().take().expect("window clone");
            solo.run_sampled_window(plan, i as u32)
        },
    );
    let mut steady_cycles = Vec::with_capacity(plan.steady_windows as usize);
    let mut event_cycles = Vec::with_capacity(plan.event_windows as usize);
    let mut agg = PredictionStats::new();
    for (i, (cycles, stats)) in runs.into_iter().enumerate() {
        if (i as u32) < plan.steady_windows {
            steady_cycles.push(cycles);
            agg += stats;
        } else {
            event_cycles.push(cycles);
        }
    }
    Some(SampledMeasurement {
        steady_cycles,
        steady_units: plan.window,
        event_cycles,
        event_units: plan.event_window,
        stats: agg,
        per_thread: Vec::new(),
        threads: 1,
        steady_weights: Vec::new(),
    })
}

/// SMT counterpart of [`run_single_windowed`]: per-thread statistics
/// aggregate over the steady windows, and the final per-thread cycle
/// counters come from the clone that ran the *last* window (whose
/// functional prefix replay leaves its clocks equal to the serial
/// run's).
fn run_smt_windowed(
    sim: &SmtSim,
    plan: &SamplingPlan,
    threads: usize,
) -> Option<SampledMeasurement> {
    let n = plan.total_windows() as usize;
    let clones: Option<Vec<SmtSim>> = (0..n).map(|_| sim.try_clone()).collect();
    let slots: Vec<Mutex<Option<SmtSim>>> =
        clones?.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let runs = parallel_map_bounded_with(
        n,
        threads,
        || (),
        |(), i| {
            let mut solo = slots[i].lock().take().expect("window clone");
            let (cycles, per_thread) = solo.run_sampled_window(plan, i as u32);
            let clocks = (i == n - 1).then(|| solo.thread_clocks());
            (cycles, per_thread, clocks)
        },
    );
    let hw_threads = runs.first().map_or(0, |(_, t, _)| t.len());
    let mut steady_cycles = Vec::with_capacity(plan.steady_windows as usize);
    let mut event_cycles = Vec::with_capacity(plan.event_windows as usize);
    let mut agg = vec![PredictionStats::new(); hw_threads];
    let mut last_clocks = Vec::new();
    for (i, (cycles, per_thread, clocks)) in runs.into_iter().enumerate() {
        if (i as u32) < plan.steady_windows {
            steady_cycles.push(cycles);
            for (a, t) in agg.iter_mut().zip(&per_thread) {
                *a += *t;
            }
        } else {
            event_cycles.push(cycles);
        }
        if let Some(clocks) = clocks {
            last_clocks = clocks;
        }
    }
    for (a, clock) in agg.iter_mut().zip(&last_clocks) {
        a.cycles = *clock;
    }
    let mut stats = PredictionStats::new();
    for a in &agg {
        stats += *a;
    }
    Some(SampledMeasurement {
        steady_cycles,
        steady_units: plan.window,
        event_cycles,
        event_units: plan.event_window,
        stats,
        per_thread: agg,
        threads: hw_threads as u32,
        steady_weights: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_core::Mechanism;
    use sbp_sim::WorkBudget;

    use crate::spec::CaseSpec;

    fn quick_spec(mode_smt: bool) -> SweepSpec {
        let base = if mode_smt {
            SweepSpec::smt("exec test")
        } else {
            SweepSpec::single("exec test")
        };
        base.with_cases(vec![CaseSpec::pair("c1", "gcc", "calculix")])
            .with_intervals(vec![sbp_sim::SwitchInterval::M8])
            .with_mechanisms(vec![Mechanism::CompleteFlush])
            .with_budget(WorkBudget::quick())
    }

    /// The warm-checkpoint cache must be invisible in results: executing
    /// a two-interval grid (the second interval retargets the first's
    /// warm state) matches per-job fresh runs bit for bit.
    #[test]
    fn checkpoint_reuse_across_intervals_changes_no_results() {
        for smt in [false, true] {
            let spec = quick_spec(smt).with_intervals(vec![
                sbp_sim::SwitchInterval::M8,
                sbp_sim::SwitchInterval::M12,
            ]);
            let plan = crate::plan::plan(&spec);
            let cached = execute(&spec, &plan).expect("run");
            // Fresh single-interval specs never share a warm key with a
            // still-cached snapshot being retargeted mid-grid, so each
            // cell is recomputed from scratch for comparison.
            for (job, got) in plan.jobs.iter().zip(&cached) {
                let fresh = run_job(&spec, &plan, job).expect("fresh run");
                assert_eq!(got, &fresh, "checkpoint restore diverged (smt={smt})");
            }
        }
    }

    #[test]
    fn sampled_execution_is_deterministic_and_estimates_overhead() {
        for smt in [false, true] {
            let spec = quick_spec(smt).with_sampling(Some(sbp_sim::SamplingPlan::quick()));
            let plan = crate::plan::plan(&spec);
            let first = execute(&spec, &plan).expect("run");
            let second = execute(&spec, &plan).expect("rerun");
            assert_eq!(first, second, "sampled results must be deterministic");
            assert_eq!(first.len(), 2);
            let baseline = first[0].sim().expect("sim");
            let flush = first[1].sim().expect("sim");
            for r in [baseline, flush] {
                assert!(r.cycles > 0.0);
                let se = r.stderr.expect("sampled runs carry a stderr");
                assert!(se.is_finite() && se >= 0.0);
            }
            assert!(
                flush.cycles > baseline.cycles,
                "Complete Flush must cost cycles over baseline (smt={smt}): \
                 {} vs {}",
                flush.cycles,
                baseline.cycles,
            );
        }
    }

    /// Window-parallel execution is an implementation detail: fanning
    /// the sampled windows out across clones of the warm checkpoint must
    /// reassemble the exact `SampledMeasurement` the serial run
    /// produces, in both gap modes and on both core modes.
    #[test]
    fn window_parallel_sampled_measurement_matches_serial() {
        for smt in [false, true] {
            for splan in [
                sbp_sim::SamplingPlan::quick(),
                sbp_sim::SamplingPlan::quick_functional(),
            ] {
                let spec = quick_spec(smt).with_sampling(Some(splan));
                let plan = crate::plan::plan(&spec);
                let (group, mechanism) = match &plan.jobs[1] {
                    Job::Sim { group, mechanism } => (&plan.groups[*group], *mechanism),
                    Job::Attack(_) => unreachable!("sim plan"),
                };
                let mut arena = JobArena::new();
                if smt {
                    let (mut serial, _) =
                        warm_smt(&mut arena, &spec, group, mechanism).expect("warm");
                    let want = serial.run_sampled(&splan);
                    let (windowed, _) =
                        warm_smt(&mut arena, &spec, group, mechanism).expect("warm");
                    let got = run_smt_windowed(&windowed, &splan, 3).expect("window clones");
                    assert_eq!(got, want, "smt windowed ({:?})", splan.gap_mode);
                } else {
                    let (mut serial, _) =
                        warm_single(&mut arena, &spec, group, mechanism).expect("warm");
                    let want = serial.run_sampled(&splan);
                    let (windowed, _) =
                        warm_single(&mut arena, &spec, group, mechanism).expect("warm");
                    let got = run_single_windowed(&windowed, &splan, 3).expect("window clones");
                    assert_eq!(got, want, "single windowed ({:?})", splan.gap_mode);
                }
            }
        }
    }

    #[test]
    fn window_threads_knob_clamps_and_overrides() {
        set_window_threads(0);
        assert_eq!(window_threads(), 1, "zero clamps to serial");
        set_window_threads(4);
        assert_eq!(window_threads(), 4);
        set_window_threads(1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<usize> = parallel_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn executes_single_core_plan() {
        let spec = quick_spec(false);
        let plan = crate::plan::plan(&spec);
        let raw = execute(&spec, &plan).expect("run");
        assert_eq!(raw.len(), 2);
        for r in &raw {
            let r = r.sim().expect("sim result");
            assert!(r.cycles > 0.0);
            assert!(r.stats.cond_branches > 0);
            assert!(r.per_thread.is_empty(), "no per-thread split single-core");
        }
    }

    #[test]
    fn executes_smt_plan_with_summed_thread_stats() {
        let spec = quick_spec(true);
        let plan = crate::plan::plan(&spec);
        let raw = execute(&spec, &plan).expect("run");
        assert_eq!(raw.len(), 2);
        for r in &raw {
            let r = r.sim().expect("sim result");
            assert!(r.cycles > 0.0);
            // Both threads' instructions are folded into one record...
            assert!(r.stats.instructions >= spec.budget.measure);
            // ...and the per-thread breakdown sums back to it.
            assert_eq!(r.per_thread.len(), 2);
            assert_eq!(
                r.per_thread.iter().map(|t| t.instructions).sum::<u64>(),
                r.stats.instructions
            );
        }
    }

    #[test]
    fn executes_attack_plans() {
        use sbp_attack::AttackKind;
        let spec = crate::spec::SweepSpec::attack("exec test")
            .with_attacks(vec![AttackKind::SpectreV2])
            .with_mechanisms(vec![Mechanism::Baseline, Mechanism::noisy_xor_bp()])
            .with_attack_modes(vec![crate::spec::SweepMode::SingleCore])
            .with_trials(300);
        let plan = crate::plan::plan(&spec);
        let raw = execute(&spec, &plan).expect("run");
        assert_eq!(raw.len(), 2);
        let baseline = raw[0].attack().expect("attack outcome");
        let defended = raw[1].attack().expect("attack outcome");
        assert!(baseline.success_rate > defended.success_rate);
        assert_eq!(baseline.trials, 300);
    }

    #[test]
    fn arena_reuse_changes_no_results() {
        let spec = quick_spec(false);
        let plan = crate::plan::plan(&spec);
        let mut arena = JobArena::new();
        let pooled: Vec<RawResult> = plan
            .jobs
            .iter()
            .map(|j| run_job_in(&mut arena, &spec, &plan, j).expect("run"))
            .collect();
        // Every buffer adopted from the arena came back: at most one per
        // software context. Jobs served from the warm-checkpoint cache
        // (populated here or by a concurrently running test — the cache
        // is process-wide) own their cloned buffers and bypass the arena,
        // so the pool may legitimately hold fewer.
        assert!(arena.pooled_buffers() <= 2, "arena leaked buffers");
        let fresh: Vec<RawResult> = plan
            .jobs
            .iter()
            .map(|j| run_job(&spec, &plan, j).expect("run"))
            .collect();
        assert_eq!(pooled, fresh, "arena reuse must not change results");
    }

    #[test]
    fn parallel_map_with_reuses_worker_scratch() {
        let out = parallel_map_with(
            64,
            || 0u32,
            |calls, i| {
                *calls += 1;
                i + *calls as usize // depends on scratch, not just i
            },
        );
        // Every result is i + (per-worker call count at that moment); with
        // reuse the counts exceed 1 unless there are 64 workers.
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert!(*v > i, "scratch not threaded through");
        }
    }

    #[test]
    fn unknown_workload_is_an_error_not_a_panic() {
        let spec =
            quick_spec(false).with_cases(vec![CaseSpec::pair("bad", "no_such_workload", "gcc")]);
        let plan = crate::plan::plan(&spec);
        assert!(execute(&spec, &plan).is_err());
    }
}
