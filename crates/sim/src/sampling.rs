//! Stratified sampled simulation: plans, window measurements, and the
//! weighted cycle estimator.
//!
//! A paper-scale cell simulates millions of target branches, but the
//! quantity every figure checks — overhead relative to baseline — is
//! driven by two regimes: *steady-state* prediction cost (always-on
//! mechanism cost: codec latency, noise mispredicts, aliasing) and the
//! *post-context-switch misprediction storm* (the cost of flushed or
//! re-keyed tables retraining). A [`SamplingPlan`] measures each regime
//! directly with a few short windows and combines them with their true
//! occupancy in the exact timeline:
//!
//! ```text
//! M̂ = B·c_s + n_sw · W_e · (c_e − c_s)      n_sw = M̂ · T / I
//!   ⇒ M̂ = B·c_s / (1 − T·W_e·(c_e − c_s)/I)
//! ```
//!
//! where `B` is the full measurement budget (target branches on the
//! single core, instructions on SMT), `c_s`/`c_e` are the per-unit cycle
//! costs measured in the steady/event windows, `W_e` is the event-window
//! length, `I` the context-switch interval in cycles and `T` the number
//! of hardware threads receiving timer interrupts (1 on the single
//! core). The fixed point exists because switches happen per *cycle* of
//! executed time while windows are denominated in work units.
//!
//! Because switches enter only through the analytic weight `n_sw`, the
//! measurement itself is **interval-independent**: one warm simulation
//! yields estimates for every interval on the axis. Window boundaries
//! are count-based (not clock-based), so baseline and mechanism cells
//! with the same seed measure the *same stream positions* — the paired
//! common-random-numbers design that makes overhead deltas low-variance.
//!
//! The estimator propagates a standard error from the per-window spread
//! via the delta method; reports carry it so tolerance checks can see
//! the sampling uncertainty. The exact path remains the reference:
//! sampling is opt-in per sweep spec and never used by golden tests.

use serde::{Deserialize, Serialize};

use sbp_types::{PredictionStats, SbpError};

use crate::config::SwitchInterval;
use crate::experiment::scale;

/// How a sampled run advances through the gap regions between windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GapMode {
    /// Skip gaps generation-only: the trace generator advances (RNG
    /// cursor preserved) but no branch executes, so predictor state goes
    /// stale and each window needs a `rewarm` prefix. Cheapest, but
    /// under-covers background table pollution in storm-dominated cells.
    #[default]
    FastForward,
    /// Execute gaps *functionally*: every branch trains the predictors,
    /// BTB, RAS and key contexts bit-identically to the timed path, but
    /// cycle/stats bookkeeping is skipped. Slower than fast-forward per
    /// unit, yet windows open on exact predictor state — `rewarm` can be
    /// zero and gaps can shrink to decorrelation spacing, eliminating
    /// the storm-cell pollution bias by construction.
    Functional,
}

/// A stratified sampling plan.
///
/// Units are **target branches** on the single core and **total
/// instructions** on SMT, matching the corresponding
/// [`crate::WorkBudget`] denominations. All window work is executed
/// through the normal batched hot loop; gaps advance the target's trace
/// generator without executing (see `TraceGenerator::skip_branches`)
/// under [`GapMode::FastForward`], or execute functionally (state-exact,
/// timing-free) under [`GapMode::Functional`]. Both preserve the RNG
/// cursor, so sampled runs are byte-deterministic for a fixed plan and
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// Number of steady-state measurement windows.
    pub steady_windows: u32,
    /// Work units measured per steady window.
    pub window: u64,
    /// Work units skipped (generation-only) before each window.
    pub gap: u64,
    /// Work units executed unmeasured after each gap, re-synchronising
    /// the predictor with the stream position before measuring.
    pub rewarm: u64,
    /// Number of forced-context-switch event windows.
    pub event_windows: u32,
    /// Work units measured per event window (must cover the
    /// misprediction storm).
    pub event_window: u64,
    /// Background work executed between the forced switch pair on the
    /// single core (models the other context's table pollution);
    /// unused on SMT where threads run concurrently.
    pub burst: u64,
    /// Gap advancement strategy (see [`GapMode`]). Defaults to
    /// [`GapMode::FastForward`], the pre-hybrid behaviour.
    #[serde(default)]
    pub gap_mode: GapMode,
    /// When nonzero, steady windows are *phase-clustered*: the target
    /// stream must be a recorded trace, and up to this many
    /// representative windows (chosen by `sbp_trace::cluster_trace`,
    /// weighted by phase share) replace the uniform
    /// `steady_windows`-window schedule. Event windows still follow the
    /// plan. Zero (the default) keeps the uniform schedule.
    #[serde(default)]
    pub phase_windows: u32,
}

impl SamplingPlan {
    /// Default plan for single-core sweeps (branch units), scaled by
    /// `SBP_SCALE` like [`crate::WorkBudget::single_default`].
    pub fn single_default() -> Self {
        let s = scale();
        SamplingPlan {
            steady_windows: 4,
            window: scaled(60_000, s, 2_000),
            gap: scaled(400_000, s, 4_000),
            rewarm: scaled(20_000, s, 1_000),
            event_windows: 2,
            event_window: scaled(40_000, s, 2_000),
            burst: scaled(24_000, s, 1_000),
            gap_mode: GapMode::FastForward,
            phase_windows: 0,
        }
    }

    /// Default plan for SMT sweeps (instruction units), scaled by
    /// `SBP_SCALE` like [`crate::WorkBudget::smt_default`].
    pub fn smt_default() -> Self {
        let s = scale();
        SamplingPlan {
            steady_windows: 4,
            window: scaled(2_000_000, s, 40_000),
            gap: scaled(10_000_000, s, 100_000),
            rewarm: scaled(500_000, s, 20_000),
            event_windows: 2,
            event_window: scaled(1_200_000, s, 40_000),
            burst: 0,
            gap_mode: GapMode::FastForward,
            phase_windows: 0,
        }
    }

    /// Hybrid single-core plan: small *executed* gaps, no rewarm, and
    /// event windows long enough to hold the whole storm.
    ///
    /// Functional gap execution keeps predictor state exact, so the gap
    /// only needs to decorrelate adjacent windows, not re-cover phase
    /// behaviour — the synthetic workload generators are stationary.
    /// The 160k-branch event window covers the full post-switch
    /// misprediction storm: the flush-family retrain tail extends well
    /// past the default plan's 40k-branch window, and truncating it was
    /// the dominant storm-cell bias (CF/4M read ~35% low; with the full
    /// tail it lands within ~1% of exact — see `docs/PERFORMANCE.md`).
    pub fn single_hybrid() -> Self {
        let s = scale();
        SamplingPlan {
            steady_windows: 4,
            window: scaled(60_000, s, 2_000),
            gap: scaled(100_000, s, 2_000),
            rewarm: 0,
            event_windows: 2,
            event_window: scaled(160_000, s, 2_000),
            burst: scaled(24_000, s, 1_000),
            gap_mode: GapMode::Functional,
            phase_windows: 0,
        }
    }

    /// Hybrid SMT plan: smaller windows and executed gaps, no rewarm.
    ///
    /// The SMT scheduler is clock-driven, so functional stepping keeps
    /// cycle arithmetic (see `SmtSim`) and the speedup comes from the
    /// leaner geometry: roughly half the total stepped instructions of
    /// [`Self::smt_default`] with bias-free gap coverage. Gaps shrink
    /// the most — with state-exact execution they only decorrelate
    /// adjacent windows, so 250k instructions replace the default's
    /// 10M-instruction fast-forward regions.
    pub fn smt_hybrid() -> Self {
        let s = scale();
        SamplingPlan {
            steady_windows: 4,
            window: scaled(800_000, s, 40_000),
            gap: scaled(250_000, s, 20_000),
            rewarm: 0,
            event_windows: 2,
            event_window: scaled(1_000_000, s, 40_000),
            burst: 0,
            gap_mode: GapMode::Functional,
            phase_windows: 0,
        }
    }

    /// A tiny plan for unit tests (seconds, not minutes).
    pub fn quick() -> Self {
        SamplingPlan {
            steady_windows: 2,
            window: 5_000,
            gap: 8_000,
            rewarm: 2_000,
            event_windows: 1,
            event_window: 4_000,
            burst: 3_000,
            gap_mode: GapMode::FastForward,
            phase_windows: 0,
        }
    }

    /// [`Self::quick`] with functional gaps, for hybrid-path unit tests.
    pub fn quick_functional() -> Self {
        SamplingPlan {
            rewarm: 0,
            gap_mode: GapMode::Functional,
            ..Self::quick()
        }
    }

    /// Canonical identity string for store fingerprints: two plans with
    /// different windows must never collide in a sweep store. Legacy
    /// fast-forward plans keep their pre-[`GapMode`] strings byte-stable
    /// (existing stores stay valid); functional plans append a mode
    /// token so the two paths never share cached results, and
    /// phase-clustered plans append a `p{k}` token for the same reason.
    pub fn fingerprint(&self) -> String {
        let mode = match self.gap_mode {
            GapMode::FastForward => "",
            GapMode::Functional => "mfunc",
        };
        let phases = if self.phase_windows > 0 {
            format!("p{}", self.phase_windows)
        } else {
            String::new()
        };
        format!(
            "s{}x{}g{}r{}e{}x{}b{}{mode}{phases}",
            self.steady_windows,
            self.window,
            self.gap,
            self.rewarm,
            self.event_windows,
            self.event_window,
            self.burst
        )
    }

    /// Total measurement windows (steady + event): the unit of
    /// intra-worker window parallelism.
    pub fn total_windows(&self) -> u32 {
        self.steady_windows + self.event_windows
    }

    /// Checks the plan is executable.
    ///
    /// # Errors
    ///
    /// Returns a config error when a window stratum has zero windows or
    /// zero-length windows.
    pub fn validate(&self) -> Result<(), SbpError> {
        if self.steady_windows == 0 || self.window == 0 {
            return Err(SbpError::config(
                "sampling plan needs at least one non-empty steady window",
            ));
        }
        if self.event_windows > 0 && self.event_window == 0 {
            return Err(SbpError::config(
                "sampling plan event windows must be non-empty",
            ));
        }
        Ok(())
    }

    /// Work units executed (not skipped) per measurement, excluding
    /// warmup — the cost the plan pays per cell.
    pub fn executed_units(&self) -> u64 {
        self.steady_windows as u64 * (self.window + self.rewarm)
            + self.event_windows as u64 * (self.event_window + self.rewarm + self.burst)
    }
}

fn scaled(value: u64, s: f64, min: u64) -> u64 {
    ((value as f64 * s) as u64).max(min)
}

/// Raw per-window measurements from a sampled run, before any weighting.
///
/// Produced by `SingleCoreSim::run_sampled` / `SmtSim::run_sampled`;
/// interval-independent (the forced-switch windows measure the storm
/// itself, and the interval enters only in [`estimate_cycles`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SampledMeasurement {
    /// Measured cycles per steady window (target cycles on the single
    /// core, wall cycles on SMT).
    pub steady_cycles: Vec<f64>,
    /// Work units per steady window.
    pub steady_units: u64,
    /// Measured cycles per forced-switch event window (includes the
    /// resume context-switch overhead, as the exact loop attributes it).
    pub event_cycles: Vec<f64>,
    /// Work units per event window.
    pub event_units: u64,
    /// Aggregate prediction statistics over the steady windows only.
    /// Storm windows are excluded so accuracy/MPKI reflect their tiny
    /// true occupancy rather than the deliberate event oversampling.
    pub stats: PredictionStats,
    /// Per-thread steady-window statistics (SMT; empty on single core).
    pub per_thread: Vec<PredictionStats>,
    /// Hardware threads receiving timer interrupts (the `T` in the
    /// estimator); 1 on the single core.
    pub threads: u32,
    /// Per-steady-window weights from phase clustering (summing to 1).
    /// Empty for the uniform schedule, where every window carries equal
    /// weight — the estimator reproduces the legacy unweighted
    /// arithmetic bit-for-bit in that case.
    pub steady_weights: Vec<f64>,
}

/// A weighted cycle estimate with its propagated standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledEstimate {
    /// Estimated cycles for the full measurement budget.
    pub cycles: f64,
    /// Delta-method standard error of `cycles` from the per-window
    /// spread (0 when a stratum has a single window).
    pub stderr: f64,
}

/// Combines window measurements into the full-budget cycle estimate for
/// one context-switch interval (see the module docs for the model).
///
/// `measure_units` is the exact-path measurement budget the estimate
/// stands in for ([`crate::WorkBudget::measure`]).
pub fn estimate_cycles(
    m: &SampledMeasurement,
    measure_units: u64,
    interval: SwitchInterval,
) -> SampledEstimate {
    let (c_s, se_s) = if m.steady_weights.is_empty() {
        per_unit(&m.steady_cycles, m.steady_units)
    } else {
        per_unit_weighted(&m.steady_cycles, m.steady_units, &m.steady_weights)
    };
    let b = measure_units as f64;
    let no_events =
        m.event_cycles.is_empty() || m.event_units == 0 || interval.cycles() == u64::MAX;
    if no_events {
        return SampledEstimate {
            cycles: b * c_s,
            stderr: b * se_s,
        };
    }
    let (c_e, se_e) = per_unit(&m.event_cycles, m.event_units);
    let w_e = m.event_units as f64;
    let t = m.threads as f64;
    let i = interval.cycles() as f64;
    // D = 1 − T·W_e·(c_e − c_s)/I; clamp so a pathological plan (storm
    // longer than the interval) degrades gracefully instead of blowing
    // up the fixed point.
    let d = (1.0 - t * w_e * (c_e - c_s) / i).max(0.25);
    let cycles = b * c_s / d;
    // Partials of M̂ = B·c_s/D with ∂D/∂c_s = +T·W_e/I, ∂D/∂c_e = −T·W_e/I.
    let dm_dcs = b / d - b * c_s * (t * w_e / i) / (d * d);
    let dm_dce = b * c_s * (t * w_e / i) / (d * d);
    let stderr = ((dm_dcs * se_s).powi(2) + (dm_dce * se_e).powi(2)).sqrt();
    SampledEstimate { cycles, stderr }
}

/// Mean and standard error of per-unit window costs.
fn per_unit(cycles: &[f64], units: u64) -> (f64, f64) {
    if cycles.is_empty() || units == 0 {
        return (0.0, 0.0);
    }
    let u = units as f64;
    let xs: Vec<f64> = cycles.iter().map(|c| c / u).collect();
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// [`per_unit`] for phase-weighted windows: the mean weights each
/// window by its phase's share of the trace, and the standard error
/// uses the reliability-weights estimator (weights are shares, not
/// repeat counts). Falls back to the unweighted path when the weights
/// are degenerate (non-positive sum).
fn per_unit_weighted(cycles: &[f64], units: u64, weights: &[f64]) -> (f64, f64) {
    debug_assert_eq!(cycles.len(), weights.len(), "one weight per window");
    if cycles.is_empty() || units == 0 {
        return (0.0, 0.0);
    }
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return per_unit(cycles, units);
    }
    let u = units as f64;
    let xs: Vec<f64> = cycles.iter().map(|c| c / u).collect();
    let ws: Vec<f64> = weights.iter().map(|w| w / wsum).collect();
    let mean: f64 = xs.iter().zip(&ws).map(|(x, w)| x * w).sum();
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    // Unbiased weighted variance under reliability weights, then the
    // effective-sample-size shrink for the standard error of the mean.
    let w2: f64 = ws.iter().map(|w| w * w).sum();
    if w2 >= 1.0 {
        // One window holds all the weight: no spread information.
        return (mean, 0.0);
    }
    let var: f64 = xs
        .iter()
        .zip(&ws)
        .map(|(x, w)| w * (x - mean).powi(2))
        .sum::<f64>()
        / (1.0 - w2);
    (mean, (var * w2).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(steady: &[f64], event: &[f64]) -> SampledMeasurement {
        SampledMeasurement {
            steady_cycles: steady.to_vec(),
            steady_units: 10_000,
            event_cycles: event.to_vec(),
            event_units: 5_000,
            stats: PredictionStats::new(),
            per_thread: Vec::new(),
            threads: 1,
            steady_weights: Vec::new(),
        }
    }

    #[test]
    fn fingerprints_separate_plans() {
        let a = SamplingPlan::quick();
        let mut b = a;
        b.window += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), SamplingPlan::quick().fingerprint());
    }

    #[test]
    fn fingerprints_keep_legacy_strings_and_separate_gap_modes() {
        // Fast-forward plans must keep their pre-GapMode fingerprints so
        // existing stores resolve; functional plans must never collide
        // with them.
        let quick = SamplingPlan::quick();
        assert_eq!(quick.fingerprint(), "s2x5000g8000r2000e1x4000b3000");
        let mut func = quick;
        func.gap_mode = GapMode::Functional;
        assert_ne!(quick.fingerprint(), func.fingerprint());
        assert!(func.fingerprint().ends_with("mfunc"));
        assert!(SamplingPlan::single_hybrid().validate().is_ok());
        assert!(SamplingPlan::smt_hybrid().validate().is_ok());
        assert_ne!(
            SamplingPlan::single_hybrid().fingerprint(),
            SamplingPlan::single_default().fingerprint()
        );
    }

    #[test]
    fn total_windows_counts_both_strata() {
        assert_eq!(SamplingPlan::quick().total_windows(), 3);
        assert_eq!(SamplingPlan::single_default().total_windows(), 6);
    }

    #[test]
    fn validate_rejects_empty_strata() {
        let mut p = SamplingPlan::quick();
        p.steady_windows = 0;
        assert!(p.validate().is_err());
        let mut p = SamplingPlan::quick();
        p.window = 0;
        assert!(p.validate().is_err());
        let mut p = SamplingPlan::quick();
        p.event_window = 0;
        assert!(p.validate().is_err());
        p.event_windows = 0;
        assert!(p.validate().is_ok());
        assert!(SamplingPlan::single_default().validate().is_ok());
        assert!(SamplingPlan::smt_default().validate().is_ok());
    }

    #[test]
    fn no_switches_is_pure_steady_extrapolation() {
        let m = measurement(&[35_000.0, 35_000.0], &[60_000.0]);
        let est = estimate_cycles(&m, 1_000_000, SwitchInterval::Off);
        // c_s = 3.5 cycles/branch over 1M branches.
        assert!((est.cycles - 3.5e6).abs() < 1.0);
        assert_eq!(est.stderr, 0.0);
    }

    #[test]
    fn storms_add_occupancy_weighted_cost() {
        // c_s = 3.5, c_e = 12 over W_e = 5k: each storm adds
        // 5k·(12 − 3.5) = 42.5k cycles, one per 4M cycles.
        let m = measurement(&[35_000.0, 35_000.0], &[60_000.0]);
        let est = estimate_cycles(&m, 1_000_000, SwitchInterval::M4);
        let d: f64 = 1.0 - 5_000.0 * (12.0 - 3.5) / 4_000_000.0;
        assert!((est.cycles - 3.5e6 / d).abs() < 1.0);
        // Larger interval → smaller overhead, monotone.
        let est8 = estimate_cycles(&m, 1_000_000, SwitchInterval::M8);
        let est12 = estimate_cycles(&m, 1_000_000, SwitchInterval::M12);
        assert!(est.cycles > est8.cycles);
        assert!(est8.cycles > est12.cycles);
        assert!(est12.cycles > 3.5e6);
    }

    #[test]
    fn stderr_tracks_window_spread() {
        let tight = measurement(&[35_000.0, 35_010.0], &[60_000.0]);
        let loose = measurement(&[30_000.0, 40_000.0], &[60_000.0]);
        let a = estimate_cycles(&tight, 1_000_000, SwitchInterval::M8);
        let b = estimate_cycles(&loose, 1_000_000, SwitchInterval::M8);
        assert!(a.stderr > 0.0);
        assert!(b.stderr > 10.0 * a.stderr);
    }

    #[test]
    fn phase_windows_extend_the_fingerprint_without_touching_legacy() {
        let quick = SamplingPlan::quick();
        assert_eq!(quick.fingerprint(), "s2x5000g8000r2000e1x4000b3000");
        let mut phased = quick;
        phased.phase_windows = 6;
        assert_eq!(phased.fingerprint(), "s2x5000g8000r2000e1x4000b3000p6");
        let mut func = phased;
        func.gap_mode = GapMode::Functional;
        assert!(func.fingerprint().ends_with("mfuncp6"));
    }

    #[test]
    fn uniform_weights_match_the_unweighted_estimate() {
        let unweighted = measurement(&[35_000.0, 36_000.0], &[60_000.0]);
        let mut weighted = unweighted.clone();
        weighted.steady_weights = vec![0.5, 0.5];
        let a = estimate_cycles(&unweighted, 1_000_000, SwitchInterval::M8);
        let b = estimate_cycles(&weighted, 1_000_000, SwitchInterval::M8);
        assert!(
            (a.cycles - b.cycles).abs() < 1e-6,
            "{} vs {}",
            a.cycles,
            b.cycles
        );
        assert!(
            (a.stderr - b.stderr).abs() < 1e-6,
            "{} vs {}",
            a.stderr,
            b.stderr
        );
    }

    #[test]
    fn phase_weights_tilt_the_estimate_toward_heavy_phases() {
        // The cheap window carries 90% of the trace: the weighted
        // estimate must sit far below the uniform mean.
        let mut m = measurement(&[30_000.0, 60_000.0], &[]);
        m.steady_weights = vec![0.9, 0.1];
        let est = estimate_cycles(&m, 1_000_000, SwitchInterval::Off);
        // c_s = 0.9·3.0 + 0.1·6.0 = 3.3 cycles/branch.
        assert!((est.cycles - 3.3e6).abs() < 1.0, "{}", est.cycles);
        assert!(est.stderr > 0.0);
        // A single all-weight window reports zero spread.
        let mut solo = measurement(&[30_000.0], &[]);
        solo.steady_weights = vec![1.0];
        let est = estimate_cycles(&solo, 1_000_000, SwitchInterval::Off);
        assert_eq!(est.stderr, 0.0);
    }

    #[test]
    fn executed_units_counts_all_strata() {
        let p = SamplingPlan::quick();
        assert_eq!(
            p.executed_units(),
            2 * (5_000 + 2_000) + (4_000 + 2_000 + 3_000)
        );
    }
}
