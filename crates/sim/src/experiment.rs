//! High-level experiment runners used by the benchmark harnesses.
//!
//! Every figure in the paper reports *normalized performance overhead*:
//! `cycles(mechanism) / cycles(baseline) - 1` for identical work. These
//! helpers run the matched pair of simulations and compute that ratio.

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_trace::BenchmarkCase;
use sbp_types::{PredictionStats, SbpError};

use crate::config::{CoreConfig, SwitchInterval};
use crate::core::SingleCoreSim;
use crate::smt::{SmtResult, SmtSim};

/// Work amounts for a run, scalable via the `SBP_SCALE` environment
/// variable (1.0 = the defaults below; the paper uses 2 B instructions,
/// which corresponds to `SBP_SCALE` ≈ 100 — feasible but slow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkBudget {
    /// Warm-up branches (single-core) or instructions (SMT), discarded.
    pub warmup: u64,
    /// Measured branches (single-core) or instructions (SMT).
    pub measure: u64,
}

impl WorkBudget {
    /// Default single-core budget (in target branches).
    pub fn single_default() -> Self {
        let s = scale();
        WorkBudget {
            warmup: (300_000.0 * s) as u64,
            measure: (6_000_000.0 * s) as u64,
        }
    }

    /// Default SMT budget (in instructions across threads).
    pub fn smt_default() -> Self {
        let s = scale();
        WorkBudget {
            warmup: (6_000_000.0 * s) as u64,
            measure: (120_000_000.0 * s) as u64,
        }
    }

    /// A small budget for fast tests.
    pub fn quick() -> Self {
        WorkBudget {
            warmup: 20_000,
            measure: 200_000,
        }
    }
}

/// Reads the `SBP_SCALE` multiplier (default 1.0, clamped to ≥ 0.01).
///
/// The environment variable is parsed once per process and cached; an
/// unparsable value warns on stderr (once) and falls back to 1.0 instead
/// of silently ignoring the setting.
///
/// Note that the sweep store's job fingerprint includes `SBP_SCALE` (via
/// the scaled work budget), so cells recorded at one scale are invisible
/// to runs at another — changing the variable re-executes the grid
/// rather than resuming from mismatched results.
pub fn scale() -> f64 {
    static SCALE: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *SCALE.get_or_init(|| match std::env::var("SBP_SCALE") {
        Err(_) => 1.0,
        Ok(raw) => match raw.parse::<f64>() {
            Ok(s) => s.max(0.01),
            Err(_) => {
                eprintln!(
                    "warning: unparsable SBP_SCALE={raw:?}, using 1.0 \
                     (sweep-store fingerprints include the scale, so runs \
                     under this fallback resume only against scale-1 stores)"
                );
                1.0
            }
        },
    })
}

/// Runs the target benchmark of `case` on a single-threaded core and
/// returns its measured statistics.
///
/// # Errors
///
/// Propagates unknown-workload/configuration errors.
pub fn run_single_case(
    case: &BenchmarkCase,
    core: CoreConfig,
    predictor: PredictorKind,
    mechanism: Mechanism,
    interval: SwitchInterval,
    budget: WorkBudget,
    seed: u64,
) -> Result<PredictionStats, SbpError> {
    let mut sim = SingleCoreSim::new(
        core,
        predictor,
        mechanism,
        interval,
        &[case.target, case.background],
        seed,
    )?;
    Ok(sim.run_target(budget.warmup, budget.measure))
}

/// Normalized single-core overhead of `mechanism` vs the baseline for one
/// case: `cycles(mech)/cycles(baseline) - 1`.
///
/// # Errors
///
/// Propagates unknown-workload/configuration errors.
pub fn single_overhead(
    case: &BenchmarkCase,
    core: CoreConfig,
    predictor: PredictorKind,
    mechanism: Mechanism,
    interval: SwitchInterval,
    budget: WorkBudget,
    seed: u64,
) -> Result<f64, SbpError> {
    let base = run_single_case(
        case,
        core,
        predictor,
        Mechanism::Baseline,
        interval,
        budget,
        seed,
    )?;
    let mech = run_single_case(case, core, predictor, mechanism, interval, budget, seed)?;
    Ok(mech.cycles as f64 / base.cycles as f64 - 1.0)
}

/// Runs an SMT core with the given workloads.
///
/// # Errors
///
/// Propagates unknown-workload/configuration errors.
pub fn run_smt(
    workloads: &[&str],
    core: CoreConfig,
    predictor: PredictorKind,
    mechanism: Mechanism,
    interval: SwitchInterval,
    budget: WorkBudget,
    seed: u64,
) -> Result<SmtResult, SbpError> {
    let mut sim = SmtSim::new(core, predictor, mechanism, interval, workloads, seed)?;
    Ok(sim.run(budget.warmup, budget.measure))
}

/// Normalized SMT overhead of `mechanism` vs the baseline.
///
/// # Errors
///
/// Propagates unknown-workload/configuration errors.
pub fn smt_overhead(
    workloads: &[&str],
    core: CoreConfig,
    predictor: PredictorKind,
    mechanism: Mechanism,
    interval: SwitchInterval,
    budget: WorkBudget,
    seed: u64,
) -> Result<f64, SbpError> {
    let base = run_smt(
        workloads,
        core,
        predictor,
        Mechanism::Baseline,
        interval,
        budget,
        seed,
    )?;
    let mech = run_smt(
        workloads, core, predictor, mechanism, interval, budget, seed,
    )?;
    Ok(mech.cycles / base.cycles - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_trace::cases_single;

    #[test]
    fn scale_parses_env_shape() {
        // Do not mutate the environment (tests run in parallel); just
        // check the default path.
        assert!(scale() >= 0.01);
    }

    #[test]
    fn budgets_are_positive() {
        for b in [
            WorkBudget::single_default(),
            WorkBudget::smt_default(),
            WorkBudget::quick(),
        ] {
            assert!(b.measure > 0);
        }
    }

    #[test]
    fn single_overhead_is_small_for_baseline_vs_baseline() {
        let case = cases_single()[4]; // hmmer+GemsFDTD
        let o = single_overhead(
            &case,
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::Baseline,
            SwitchInterval::M8,
            WorkBudget::quick(),
            3,
        )
        .expect("run");
        assert!(o.abs() < 1e-9, "baseline vs itself must be 0, got {o}");
    }

    #[test]
    fn complete_flush_costs_more_than_baseline_single() {
        // With a quick budget the effect is noisy; just require the runs
        // complete and produce a finite number.
        let case = cases_single()[0];
        let o = single_overhead(
            &case,
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::CompleteFlush,
            SwitchInterval::M4,
            WorkBudget::quick(),
            3,
        )
        .expect("run");
        assert!(o.is_finite());
    }

    #[test]
    fn smt_runs_complete() {
        let o = smt_overhead(
            &["zeusmp", "lbm"],
            CoreConfig::gem5(),
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
            SwitchInterval::M8,
            WorkBudget::quick(),
            9,
        )
        .expect("run");
        assert!(o.is_finite());
    }
}
