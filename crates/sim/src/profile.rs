//! Opt-in wall-clock phase profiling for simulation cells.
//!
//! The campaign's `--profile` flag wants to know *where* a cell's wall
//! time goes — warm-up, gap advancement, steady windows, event windows,
//! exact measurement — without perturbing results. This module keeps
//! process-wide atomic nanosecond accumulators that the simulators feed
//! through [`time`]; when profiling is disabled (the default) the hook
//! is a branch on one relaxed atomic load and the timed closure runs
//! untouched. Accumulators are process-wide (not per-cell) by design:
//! the campaign worker resets them per entry and reports the entry's
//! aggregate breakdown.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Simulation phases the profiler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Warm-up execution before any checkpoint or measurement.
    Warm = 0,
    /// Gap advancement between sampled windows (fast-forward skip or
    /// functional execution, including any rewarm prefix).
    Gap = 1,
    /// Measured steady-state sampling windows.
    Steady = 2,
    /// Forced-context-switch event windows (including their burst).
    Event = 3,
    /// Exact-path measurement (the full-budget `run_measure` phase).
    Measure = 4,
}

impl Phase {
    /// Telemetry span name for this phase (the span taxonomy in
    /// `docs/OBSERVABILITY.md`).
    pub fn span_name(self) -> &'static str {
        match self {
            Phase::Warm => "warm",
            Phase::Gap => "gap",
            Phase::Steady => "steady_window",
            Phase::Event => "event_window",
            Phase::Measure => "measure",
        }
    }
}

const PHASES: usize = 5;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NANOS: [AtomicU64; PHASES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Turns phase profiling on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether phase profiling is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes all phase accumulators (call at an entry boundary).
pub fn reset() {
    for n in &NANOS {
        n.store(0, Ordering::Relaxed);
    }
}

/// Runs `f`, attributing its wall time to `phase` when profiling is
/// enabled. Nesting attributes the inner span to both phases; the
/// simulators only nest across *distinct* phases (a gap advanced inside
/// a window helper is timed as [`Phase::Gap`], not double-counted).
#[inline]
pub fn time<T>(phase: Phase, f: impl FnOnce() -> T) -> T {
    // Phase boundaries are also where telemetry wants its spans:
    // piggyback here so the simulators carry exactly one hook. The
    // span is advisory (wall-clock payload) and inert — one relaxed
    // atomic load — unless a telemetry job scope is active.
    let _span = sbp_telemetry::span(phase.span_name(), false, "");
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    NANOS[phase as usize].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

/// Accumulated wall seconds per phase since the last [`reset`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Warm-up seconds.
    pub warm_s: f64,
    /// Gap-advancement seconds (skip or functional, plus rewarm).
    pub gap_s: f64,
    /// Steady-window measurement seconds.
    pub steady_s: f64,
    /// Event-window measurement seconds (including bursts).
    pub event_s: f64,
    /// Exact-path measurement seconds.
    pub measure_s: f64,
}

impl PhaseBreakdown {
    /// Sum of all phase accumulators.
    pub fn total_s(&self) -> f64 {
        self.warm_s + self.gap_s + self.steady_s + self.event_s + self.measure_s
    }

    /// One-line human-readable breakdown (the campaign's stderr format).
    pub fn to_line(&self) -> String {
        format!(
            "warm {:.2}s, gaps {:.2}s, steady windows {:.2}s, event windows {:.2}s, \
             exact measure {:.2}s (phases total {:.2}s)",
            self.warm_s,
            self.gap_s,
            self.steady_s,
            self.event_s,
            self.measure_s,
            self.total_s(),
        )
    }
}

/// Snapshot of the accumulators in seconds.
pub fn snapshot() -> PhaseBreakdown {
    let secs = |p: Phase| NANOS[p as usize].load(Ordering::Relaxed) as f64 / 1e9;
    PhaseBreakdown {
        warm_s: secs(Phase::Warm),
        gap_s: secs(Phase::Gap),
        steady_s: secs(Phase::Steady),
        event_s: secs(Phase::Event),
        measure_s: secs(Phase::Measure),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test (not several) because the accumulators and the enable
    /// flag are process-global: concurrent test threads would race.
    #[test]
    fn profiling_accumulates_only_when_enabled() {
        set_enabled(false);
        reset();
        let v = time(Phase::Warm, || 7);
        assert_eq!(v, 7);
        assert_eq!(snapshot(), PhaseBreakdown::default());

        set_enabled(true);
        time(Phase::Gap, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let b = snapshot();
        set_enabled(false);
        // Concurrent test threads may legitimately record other phases
        // while enabled, so only the monotone property is asserted.
        assert!(b.gap_s > 0.0, "gap time recorded: {b:?}");
        assert!(b.total_s() >= b.gap_s);
        assert!(b.to_line().contains("gaps"));
    }
}
