//! Single-hardware-thread core with time-multiplexed software contexts.
//!
//! Models the paper's FPGA experiments: a *target* benchmark and a
//! *background* benchmark share one core under a timer scheduler; the
//! measured quantity is the target's execution cycles for a fixed amount
//! of its own work.

use sbp_core::{FrontendConfig, Mechanism, SecureFrontend};
use sbp_predictors::PredictorKind;
use sbp_trace::{TraceEvent, TraceGenerator, WorkloadProfile};
use sbp_types::{CoreEvent, PredictionStats, SbpError, ThreadId};

use crate::config::{CoreConfig, SwitchInterval};
use crate::timing::execute_branch;

/// One software context scheduled on the core.
#[derive(Debug)]
struct Context {
    gen: TraceGenerator,
    stats: PredictionStats,
}

/// A single-threaded core running several software contexts under a timer
/// scheduler.
pub struct SingleCoreSim {
    cfg: CoreConfig,
    fe: SecureFrontend,
    contexts: Vec<Context>,
    interval: u64,
    current: usize,
    clock: f64,
    next_switch: f64,
}

impl std::fmt::Debug for SingleCoreSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleCoreSim")
            .field("core", &self.cfg.name)
            .field("mechanism", &self.fe.mechanism())
            .field("contexts", &self.contexts.len())
            .field("clock", &self.clock)
            .finish()
    }
}

impl SingleCoreSim {
    /// Builds a core running `workloads[0]` as the target and the rest as
    /// background contexts.
    ///
    /// # Errors
    ///
    /// Returns an error if a workload name is unknown or fewer than two
    /// workloads are given.
    pub fn new(
        cfg: CoreConfig,
        predictor: PredictorKind,
        mechanism: Mechanism,
        interval: SwitchInterval,
        workloads: &[&str],
        seed: u64,
    ) -> Result<Self, SbpError> {
        if workloads.len() < 2 {
            return Err(SbpError::config(
                "need a target and at least one background workload",
            ));
        }
        let contexts = workloads
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let profile = WorkloadProfile::by_name(name)?;
                let base = 0x1000_0000 + (i as u64) * 0x0800_0000;
                Ok(Context {
                    gen: TraceGenerator::new(
                        &profile,
                        base,
                        sbp_types::rng::SplitMix64::derive(seed, i as u64),
                    ),
                    stats: PredictionStats::new(),
                })
            })
            .collect::<Result<Vec<_>, SbpError>>()?;
        let fe_cfg = FrontendConfig {
            predictor,
            btb: cfg.btb,
            ras_depth: cfg.ras_depth,
            threads: 1,
            mechanism,
            key_seed: sbp_types::rng::SplitMix64::derive(seed, 0xbeef),
        };
        Ok(SingleCoreSim {
            cfg,
            fe: SecureFrontend::new(fe_cfg),
            contexts,
            interval: interval.cycles(),
            current: 0,
            clock: 0.0,
            next_switch: interval.cycles() as f64,
        })
    }

    /// Advances the simulation by one event of the current context,
    /// handling timer context switches. Returns the context index that
    /// executed and whether the event was a branch.
    fn step(&mut self) -> (usize, bool) {
        if self.interval != u64::MAX && self.clock >= self.next_switch {
            self.context_switch();
        }
        let hw = ThreadId::new(0);
        let idx = self.current;
        let ev = self.contexts[idx].gen.next_event();
        match ev {
            TraceEvent::Branch(rec) => {
                let cycles = execute_branch(
                    &mut self.fe,
                    &self.cfg,
                    hw,
                    &rec,
                    &mut self.contexts[idx].stats,
                );
                self.clock += cycles;
                (idx, true)
            }
            TraceEvent::PrivilegeSwitch(to) => {
                self.fe
                    .handle_event(CoreEvent::PrivilegeSwitch { hw_thread: hw, to });
                self.contexts[idx].stats.privilege_switches += 1;
                self.clock += self.cfg.trap_overhead as f64;
                (idx, false)
            }
        }
    }

    fn context_switch(&mut self) {
        let hw = ThreadId::new(0);
        self.fe
            .handle_event(CoreEvent::ContextSwitch { hw_thread: hw });
        self.current = (self.current + 1) % self.contexts.len();
        self.contexts[self.current].stats.context_switches += 1;
        self.clock += self.cfg.context_switch_overhead as f64;
        self.next_switch += self.interval as f64;
    }

    /// Runs until the *target* (context 0) has executed `warmup` branches
    /// (discarded) and then `measure` branches (measured). Returns the
    /// target's measured statistics, with `cycles` holding the cycles the
    /// target consumed during measurement.
    pub fn run_target(&mut self, warmup: u64, measure: u64) -> PredictionStats {
        // Warm-up phase.
        let mut target_branches = 0u64;
        while target_branches < warmup {
            let (idx, was_branch) = self.step();
            if idx == 0 && was_branch {
                target_branches += 1;
            }
        }
        // Reset measured statistics; keep predictor state.
        self.contexts[0].stats = PredictionStats::new();
        let mut measured = 0u64;
        let mut target_cycles = 0.0f64;
        while measured < measure {
            let clock_before = self.clock;
            let (idx, was_branch) = self.step();
            if idx == 0 {
                target_cycles += self.clock - clock_before;
                if was_branch {
                    measured += 1;
                }
            }
        }
        let mut stats = self.contexts[0].stats;
        stats.cycles = target_cycles as u64;
        stats
    }

    /// The front-end (observability).
    pub fn frontend(&self) -> &SecureFrontend {
        &self.fe
    }

    /// Global clock in cycles.
    pub fn clock(&self) -> f64 {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(mech: Mechanism, interval: SwitchInterval, seed: u64) -> SingleCoreSim {
        SingleCoreSim::new(
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            mech,
            interval,
            &["gcc", "calculix"],
            seed,
        )
        .expect("sim")
    }

    #[test]
    fn needs_two_workloads() {
        let err = SingleCoreSim::new(
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::Baseline,
            SwitchInterval::M8,
            &["gcc"],
            1,
        );
        assert!(err.is_err());
    }

    #[test]
    fn runs_and_reports_target_stats() {
        // gcc is the hardest profile and gshare warms slowly; give it a
        // realistic warm-up before judging accuracy.
        let mut s = sim(Mechanism::Baseline, SwitchInterval::M4, 42);
        let stats = s.run_target(150_000, 200_000);
        assert!(stats.instructions > 200_000);
        assert!(stats.cond_branches > 100_000);
        assert!(stats.cycles > 0);
        assert!(
            stats.cond_accuracy() > 0.68,
            "accuracy {}",
            stats.cond_accuracy()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sim(Mechanism::noisy_xor_bp(), SwitchInterval::M8, 7).run_target(1_000, 10_000);
        let b = sim(Mechanism::noisy_xor_bp(), SwitchInterval::M8, 7).run_target(1_000, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn context_switches_fire() {
        // 20k branches at ~6 instr each / IPC 2 ≈ 60k cycles: use a short
        // synthetic interval via M4 being too long — so instead verify via
        // privilege switches (always present) and run enough work for at
        // least the scheduler to be exercised once in a long run.
        let mut s = sim(Mechanism::Baseline, SwitchInterval::M4, 3);
        let stats = s.run_target(0, 400_000);
        // gcc makes ~10 syscalls/Minstr; 400k branches ≈ 2.8M instr.
        assert!(stats.privilege_switches > 0, "no privilege switches seen");
    }

    #[test]
    fn mechanisms_do_not_change_instruction_stream() {
        let base = sim(Mechanism::Baseline, SwitchInterval::M8, 5).run_target(1_000, 15_000);
        let xor = sim(Mechanism::noisy_xor_bp(), SwitchInterval::M8, 5).run_target(1_000, 15_000);
        assert_eq!(base.cond_branches, xor.cond_branches, "same measured work");
        assert_eq!(base.instructions, xor.instructions);
    }
}
