//! Single-hardware-thread core with time-multiplexed software contexts.
//!
//! Models the paper's FPGA experiments: a *target* benchmark and a
//! *background* benchmark share one core under a timer scheduler; the
//! measured quantity is the target's execution cycles for a fixed amount
//! of its own work.

use sbp_core::{FrontendConfig, Mechanism, SecureFrontend};
use sbp_predictors::PredictorKind;
use sbp_trace::{
    EventBuffer, EventSource, PhaseSchedule, TraceEvent, TraceGenerator, TraceReplayer,
    WorkloadProfile,
};
use sbp_types::{CoreEvent, PredictionStats, SbpError, ThreadId};

use crate::config::{CoreConfig, SwitchInterval};
use crate::profile::{self, Phase};
use crate::sampling::{GapMode, SampledMeasurement, SamplingPlan};
use crate::timing::{execute_branch, execute_branch_scalar, train_branch};

/// One software context scheduled on the core.
#[derive(Debug)]
struct Context {
    gen: EventSource,
    stats: PredictionStats,
    /// Batch of pre-generated events the run loop drains without calling
    /// back into the generator per event. Unconsumed events survive phase
    /// boundaries, so the event order matches the unbatched stream exactly.
    buf: EventBuffer,
}

impl Context {
    /// Next event, honouring any still-buffered batch first so the scalar
    /// and batched loops can be mixed on one simulator without skew.
    fn next_event(&mut self) -> TraceEvent {
        match self.buf.pop() {
            Some(ev) => ev,
            None => self.gen.next_event(),
        }
    }

    fn clone_state(&self) -> Context {
        Context {
            gen: self.gen.clone(),
            stats: self.stats,
            buf: self.buf.clone(),
        }
    }
}

/// A single-threaded core running several software contexts under a timer
/// scheduler.
pub struct SingleCoreSim {
    cfg: CoreConfig,
    fe: SecureFrontend,
    contexts: Vec<Context>,
    interval: u64,
    current: usize,
    clock: f64,
    next_switch: f64,
}

impl std::fmt::Debug for SingleCoreSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleCoreSim")
            .field("core", &self.cfg.name)
            .field("mechanism", &self.fe.mechanism())
            .field("contexts", &self.contexts.len())
            .field("clock", &self.clock)
            .finish()
    }
}

impl SingleCoreSim {
    /// Builds a core running `workloads[0]` as the target and the rest as
    /// background contexts.
    ///
    /// # Errors
    ///
    /// Returns an error if a workload name is unknown or fewer than two
    /// workloads are given.
    pub fn new(
        cfg: CoreConfig,
        predictor: PredictorKind,
        mechanism: Mechanism,
        interval: SwitchInterval,
        workloads: &[&str],
        seed: u64,
    ) -> Result<Self, SbpError> {
        if workloads.len() < 2 {
            return Err(SbpError::config(
                "need a target and at least one background workload",
            ));
        }
        let contexts = workloads
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let base = 0x1000_0000 + (i as u64) * 0x0800_0000;
                let ctx_seed = sbp_types::rng::SplitMix64::derive(seed, i as u64);
                // `replay:<workload>@<dir>` workloads stream a recorded
                // trace; anything else synthesizes one. Identical draw
                // sequences either way (see `sbp_trace::replay`).
                let gen = match sbp_trace::parse_replay(name) {
                    Some((workload, dir)) => {
                        let path = sbp_trace::replay_trace_path(
                            std::path::Path::new(dir),
                            workload,
                            base,
                            ctx_seed,
                        );
                        EventSource::Replay(TraceReplayer::open(&path)?)
                    }
                    None => {
                        let profile = WorkloadProfile::by_name(name)?;
                        EventSource::Generator(TraceGenerator::new(&profile, base, ctx_seed))
                    }
                };
                Ok(Context {
                    gen,
                    stats: PredictionStats::new(),
                    buf: EventBuffer::default(),
                })
            })
            .collect::<Result<Vec<_>, SbpError>>()?;
        let fe_cfg = FrontendConfig {
            predictor,
            btb: cfg.btb,
            ras_depth: cfg.ras_depth,
            threads: 1,
            mechanism,
            key_seed: sbp_types::rng::SplitMix64::derive(seed, 0xbeef),
        };
        Ok(SingleCoreSim {
            cfg,
            fe: SecureFrontend::new(fe_cfg),
            contexts,
            interval: interval.cycles(),
            current: 0,
            clock: 0.0,
            next_switch: interval.cycles() as f64,
        })
    }

    /// Advances the simulation by one event of the current context,
    /// handling timer context switches. Returns the context index that
    /// executed and whether the event was a branch.
    ///
    /// This is the *reference* step used by [`Self::run_target_scalar`]:
    /// one event per call, through the uncached front-end path.
    fn step_scalar(&mut self) -> (usize, bool) {
        if self.interval != u64::MAX && self.clock >= self.next_switch {
            self.context_switch();
        }
        let hw = ThreadId::new(0);
        let idx = self.current;
        let ev = self.contexts[idx].next_event();
        match ev {
            TraceEvent::Branch(rec) => {
                let cycles = execute_branch_scalar(
                    &mut self.fe,
                    &self.cfg,
                    hw,
                    &rec,
                    &mut self.contexts[idx].stats,
                );
                self.clock += cycles;
                (idx, true)
            }
            TraceEvent::PrivilegeSwitch(to) => {
                self.fe
                    .handle_event(CoreEvent::PrivilegeSwitch { hw_thread: hw, to });
                self.contexts[idx].stats.privilege_switches += 1;
                self.clock += self.cfg.trap_overhead as f64;
                (idx, false)
            }
        }
    }

    fn context_switch(&mut self) {
        let hw = ThreadId::new(0);
        self.fe
            .handle_event(CoreEvent::ContextSwitch { hw_thread: hw });
        self.current = (self.current + 1) % self.contexts.len();
        self.contexts[self.current].stats.context_switches += 1;
        self.clock += self.cfg.context_switch_overhead as f64;
        self.next_switch += self.interval as f64;
    }

    /// Runs one phase of the batched loop until the target (context 0) has
    /// executed `branches` branch events. Returns the cycles attributed to
    /// the target (meaningful when `measure`).
    ///
    /// The loop drains pre-generated [`EventBuffer`] batches instead of
    /// dispatching per event, but replicates the scalar step semantics
    /// exactly: at most one context switch per step (re-checked before
    /// every event except the one immediately after a switch, which always
    /// runs), switch overhead charged to the post-switch context's step,
    /// and per-step cycle deltas accumulated as `clock_after -
    /// clock_before` so the floating-point rounding matches bit for bit.
    fn run_phase(&mut self, branches: u64, measure: bool) -> f64 {
        if branches == 0 {
            return 0.0;
        }
        let hw = ThreadId::new(0);
        let switching = self.interval != u64::MAX;
        let mut done = 0u64;
        let mut target_cycles = 0.0f64;
        'outer: loop {
            let step_start = self.clock;
            if switching && self.clock >= self.next_switch {
                self.context_switch();
            }
            let idx = self.current;
            let is_target = idx == 0;
            let cfg = &self.cfg;
            let fe = &mut self.fe;
            let ctx = &mut self.contexts[idx];
            let mut first = true;
            loop {
                if !first && switching && self.clock >= self.next_switch {
                    continue 'outer;
                }
                // The first event of a step absorbs any context-switch
                // overhead into its clock delta, like the scalar loop.
                let before = if first { step_start } else { self.clock };
                first = false;
                if ctx.buf.is_empty() {
                    ctx.gen.fill(&mut ctx.buf);
                }
                let was_branch = match ctx.buf.pop().expect("buffer was just filled") {
                    TraceEvent::Branch(rec) => {
                        self.clock += execute_branch(fe, cfg, hw, &rec, &mut ctx.stats);
                        true
                    }
                    TraceEvent::PrivilegeSwitch(to) => {
                        fe.handle_event(CoreEvent::PrivilegeSwitch { hw_thread: hw, to });
                        ctx.stats.privilege_switches += 1;
                        self.clock += cfg.trap_overhead as f64;
                        false
                    }
                };
                if is_target {
                    if measure {
                        target_cycles += self.clock - before;
                    }
                    if was_branch {
                        done += 1;
                        if done == branches {
                            break 'outer;
                        }
                    }
                }
            }
        }
        target_cycles
    }

    /// Runs until the *target* (context 0) has executed `warmup` branches
    /// (discarded) and then `measure` branches (measured). Returns the
    /// target's measured statistics, with `cycles` holding the cycles the
    /// target consumed during measurement.
    ///
    /// This is the batched hot path; [`Self::run_target_scalar`] is the
    /// per-event reference loop it is tested against. Both produce
    /// bit-identical statistics.
    pub fn run_target(&mut self, warmup: u64, measure: u64) -> PredictionStats {
        self.warm(warmup);
        self.run_measure(measure)
    }

    /// Runs the warm-up phase: `warmup` target branches, statistics
    /// discarded, predictor state kept. Splitting this out of
    /// [`Self::run_target`] lets callers snapshot the warm state
    /// ([`Self::try_clone`]) and fan one warm-up out across the
    /// interval axis or a sampling plan.
    pub fn warm(&mut self, warmup: u64) {
        profile::time(Phase::Warm, || self.run_phase(warmup, false));
    }

    /// The measurement phase of [`Self::run_target`]: resets the target's
    /// statistics and measures `measure` further target branches.
    /// `warm(w); run_measure(m)` is bit-identical to `run_target(w, m)`.
    pub fn run_measure(&mut self, measure: u64) -> PredictionStats {
        profile::time(Phase::Measure, || {
            self.contexts[0].stats = PredictionStats::new();
            let target_cycles = self.run_phase(measure, true);
            let mut stats = self.contexts[0].stats;
            stats.cycles = target_cycles as u64;
            stats
        })
    }

    /// [`Self::run_target`] through the pre-batching reference loop: one
    /// generator call and one uncached front-end access per event.
    ///
    /// Kept first-class (not test-only) so the branches-per-second
    /// benchmark can measure the batched rewrite's speedup against the
    /// loop it replaced, and so equivalence tests can pin bit-identical
    /// results between the two.
    pub fn run_target_scalar(&mut self, warmup: u64, measure: u64) -> PredictionStats {
        let mut target_branches = 0u64;
        while target_branches < warmup {
            let (idx, was_branch) = self.step_scalar();
            if idx == 0 && was_branch {
                target_branches += 1;
            }
        }
        self.contexts[0].stats = PredictionStats::new();
        let mut measured = 0u64;
        let mut target_cycles = 0.0f64;
        while measured < measure {
            let clock_before = self.clock;
            let (idx, was_branch) = self.step_scalar();
            if idx == 0 {
                target_cycles += self.clock - clock_before;
                if was_branch {
                    measured += 1;
                }
            }
        }
        let mut stats = self.contexts[0].stats;
        stats.cycles = target_cycles as u64;
        stats
    }

    /// The front-end (observability).
    pub fn frontend(&self) -> &SecureFrontend {
        &self.fe
    }

    /// Deep-copies the whole simulator — front-end tables, generator RNG
    /// cursors, partially-drained event buffers, clocks — or `None` when
    /// the front-end wraps a custom (non-cloneable) predictor.
    ///
    /// A clone continues bit-identically to the original, so a clone
    /// taken after [`Self::warm`] is a warm-state checkpoint: restoring
    /// it and running the measurement phase matches an uninterrupted
    /// `run_target` exactly.
    pub fn try_clone(&self) -> Option<Self> {
        Some(SingleCoreSim {
            cfg: self.cfg,
            fe: self.fe.try_clone()?,
            contexts: self.contexts.iter().map(Context::clone_state).collect(),
            interval: self.interval,
            current: self.current,
            clock: self.clock,
            next_switch: self.next_switch,
        })
    }

    /// Total timer context switches fired so far (all contexts).
    pub fn context_switches(&self) -> u64 {
        self.contexts.iter().map(|c| c.stats.context_switches).sum()
    }

    /// Re-aims a warm checkpoint at a different context-switch interval,
    /// so one warm-up serves the whole interval axis.
    ///
    /// Sound only when the timer has not fired yet and the clock has not
    /// reached the new interval: then the state is identical to having
    /// warmed under `interval` from the start (the clock is monotone, so
    /// no intermediate step could have crossed the new deadline either).
    /// Returns `false` — leaving the simulator untouched — when those
    /// conditions do not hold; the caller should fall back to a fresh
    /// warm-up.
    pub fn retarget_interval(&mut self, interval: SwitchInterval) -> bool {
        let cycles = interval.cycles();
        if self.context_switches() != 0 || (cycles != u64::MAX && self.clock >= cycles as f64) {
            return false;
        }
        self.interval = cycles;
        self.next_switch = cycles as f64;
        true
    }

    /// Runs a sampled measurement from the current (warm) state: the
    /// plan's steady windows, then its forced-switch event windows. See
    /// [`crate::sampling`] for the estimator the windows feed.
    ///
    /// The natural timer is disabled for the remainder of this
    /// simulator's life — switches are *forced* at the event windows and
    /// weighted analytically per interval — which is what makes one
    /// sampled run valid for every interval.
    pub fn run_sampled(&mut self, plan: &SamplingPlan) -> SampledMeasurement {
        self.interval = u64::MAX;
        self.next_switch = f64::INFINITY;
        let mut steady_cycles = Vec::with_capacity(plan.steady_windows as usize);
        let mut agg = PredictionStats::new();
        for _ in 0..plan.steady_windows {
            let (cycles, w) = self.sampled_steady_window(plan);
            agg += w;
            steady_cycles.push(cycles);
        }
        let mut event_cycles = Vec::with_capacity(plan.event_windows as usize);
        for _ in 0..plan.event_windows {
            event_cycles.push(self.sampled_event_window(plan));
        }
        SampledMeasurement {
            steady_cycles,
            steady_units: plan.window,
            event_cycles,
            event_units: plan.event_window,
            stats: agg,
            per_thread: Vec::new(),
            threads: 1,
            steady_weights: Vec::new(),
        }
    }

    /// Runs a *phase-clustered* sampled measurement from the current
    /// (warm) state: instead of the plan's evenly spaced steady windows,
    /// the steady windows are the schedule's representative intervals
    /// (SimPoint-style, see [`sbp_trace::phases`]), each carrying its
    /// phase's population weight into the stratified estimator. Event
    /// windows still come from the plan, exactly as in
    /// [`Self::run_sampled`].
    ///
    /// `schedule` indexes the **target's** branch stream with origin at
    /// the current cursor — i.e. it must have been clustered with a
    /// `skip` equal to the warm-up this simulator just ran.
    ///
    /// The gap strategy honours the plan's [`GapMode`]: fast-forward
    /// skips to `rewarm` branches before each window and re-warms timed;
    /// functional executes every gap through the timing-free trainer.
    pub fn run_phased(
        &mut self,
        plan: &SamplingPlan,
        schedule: &PhaseSchedule,
    ) -> SampledMeasurement {
        self.interval = u64::MAX;
        self.next_switch = f64::INFINITY;
        let mut steady_cycles = Vec::with_capacity(schedule.picks.len());
        let mut steady_weights = Vec::with_capacity(schedule.picks.len());
        let mut agg = PredictionStats::new();
        // Target branches consumed since the schedule origin (the warm
        // state this method starts from).
        let mut pos = 0u64;
        for pick in &schedule.picks {
            let start = pick.index * schedule.interval;
            debug_assert!(start >= pos, "picks must ascend");
            let gap = start - pos;
            profile::time(Phase::Gap, || match plan.gap_mode {
                GapMode::FastForward => {
                    let rewarm = plan.rewarm.min(gap);
                    self.skip_target(gap - rewarm);
                    self.run_phase(rewarm, false);
                }
                GapMode::Functional => {
                    self.train_context_branches(gap);
                }
            });
            let (cycles, w) = profile::time(Phase::Steady, || {
                self.contexts[0].stats = PredictionStats::new();
                let cycles = self.run_phase(schedule.interval, true);
                let mut w = self.contexts[0].stats;
                w.cycles = cycles as u64;
                (cycles, w)
            });
            agg += w;
            steady_cycles.push(cycles);
            steady_weights.push(pick.weight);
            pos = start + schedule.interval;
        }
        let mut event_cycles = Vec::with_capacity(plan.event_windows as usize);
        for _ in 0..plan.event_windows {
            event_cycles.push(self.sampled_event_window(plan));
        }
        SampledMeasurement {
            steady_cycles,
            steady_units: schedule.interval,
            event_cycles,
            event_units: plan.event_window,
            stats: agg,
            per_thread: Vec::new(),
            threads: 1,
            steady_weights,
        }
    }

    /// Runs only measurement window `index` (`0..plan.total_windows()`,
    /// steady windows first) of the sampled schedule from the current
    /// (warm) state, returning its measured cycles and — for steady
    /// windows — its window statistics.
    ///
    /// Every region before the requested window is replayed
    /// *functionally*: gaps, rewarm, forced-switch bursts **and the
    /// earlier measured windows themselves** execute through the
    /// timing-free path, which leaves predictor/BTB/generator state
    /// bit-identical to the serial [`Self::run_sampled`] at the window's
    /// opening (per-step cycle deltas are pure functions of that state,
    /// so the measured window then reproduces the serial numbers
    /// exactly). This is the unit of intra-worker window parallelism:
    /// `N` clones of one warm checkpoint each run one window, and the
    /// reassembled measurement equals the serial one.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn run_sampled_window(
        &mut self,
        plan: &SamplingPlan,
        index: u32,
    ) -> (f64, PredictionStats) {
        assert!(index < plan.total_windows(), "window index out of range");
        self.interval = u64::MAX;
        self.next_switch = f64::INFINITY;
        for _ in 0..index.min(plan.steady_windows) {
            self.replay_gap(plan);
            self.train_context_branches(plan.window);
        }
        if index < plan.steady_windows {
            return self.sampled_steady_window(plan);
        }
        for _ in 0..(index - plan.steady_windows) {
            self.replay_gap(plan);
            self.forced_switch_burst(plan, true);
            self.train_context_branches(plan.event_window);
        }
        let cycles = self.sampled_event_window(plan);
        (cycles, self.contexts[0].stats)
    }

    /// One steady window of the sampled schedule: gap advance, stats
    /// reset, measured window. Shared by [`Self::run_sampled`] and
    /// [`Self::run_sampled_window`] so the two cannot drift.
    fn sampled_steady_window(&mut self, plan: &SamplingPlan) -> (f64, PredictionStats) {
        self.advance_gap(plan);
        profile::time(Phase::Steady, || {
            self.contexts[0].stats = PredictionStats::new();
            let cycles = self.run_phase(plan.window, true);
            let mut w = self.contexts[0].stats;
            w.cycles = cycles as u64;
            (cycles, w)
        })
    }

    /// One forced-switch event window of the sampled schedule.
    fn sampled_event_window(&mut self, plan: &SamplingPlan) -> f64 {
        self.advance_gap(plan);
        profile::time(Phase::Event, || {
            // Forced switch pair: target → background(s) → target, with a
            // burst of background execution in between to model the other
            // context's table pollution. The resume switch overhead is
            // charged to the target, as the exact loop attributes it.
            self.forced_switch_burst(plan, plan.gap_mode == GapMode::Functional);
            self.contexts[0].stats = PredictionStats::new();
            self.cfg.context_switch_overhead as f64 + self.run_phase(plan.event_window, true)
        })
    }

    /// The forced-switch pair with its background burst. `functional`
    /// selects the timing-free burst executor (state-identical; the
    /// burst is unmeasured either way).
    fn forced_switch_burst(&mut self, plan: &SamplingPlan, functional: bool) {
        self.context_switch();
        while self.current != 0 {
            if functional {
                self.train_context_branches(plan.burst);
            } else {
                self.run_context_branches(plan.burst);
            }
            self.context_switch();
        }
    }

    /// Advances past one gap region per the plan's [`GapMode`].
    ///
    /// Fast-forward: generation-only skip, then a timed (unmeasured)
    /// rewarm re-synchronising the stale predictor. Functional: the gap
    /// and rewarm execute through the timing-free trainer — predictor
    /// state never goes stale, so hybrid plans set `rewarm` to 0 and the
    /// fold is exact.
    fn advance_gap(&mut self, plan: &SamplingPlan) {
        profile::time(Phase::Gap, || match plan.gap_mode {
            GapMode::FastForward => {
                self.skip_target(plan.gap);
                self.run_phase(plan.rewarm, false);
            }
            GapMode::Functional => {
                self.train_context_branches(plan.gap + plan.rewarm);
            }
        })
    }

    /// [`Self::advance_gap`] for prefix replay in
    /// [`Self::run_sampled_window`]: the fast-forward rewarm runs
    /// functionally instead of timed (state-identical, cheaper — the
    /// replay needs no clock).
    fn replay_gap(&mut self, plan: &SamplingPlan) {
        profile::time(Phase::Gap, || match plan.gap_mode {
            GapMode::FastForward => {
                self.skip_target(plan.gap);
                self.train_context_branches(plan.rewarm);
            }
            GapMode::Functional => {
                self.train_context_branches(plan.gap + plan.rewarm);
            }
        })
    }

    /// Fast-forwards the target's stream past `branches` branch events
    /// without executing them: buffered events are drained, then the
    /// generator advances generation-only (same RNG draws as executing).
    /// The clock is left untouched; predictor state goes stale by design
    /// and is re-synchronised by the plan's rewarm phase.
    fn skip_target(&mut self, branches: u64) {
        if branches == 0 {
            return;
        }
        let ctx = &mut self.contexts[0];
        let mut left = branches;
        while left > 0 {
            match ctx.buf.pop() {
                Some(TraceEvent::Branch(_)) => left -= 1,
                Some(TraceEvent::PrivilegeSwitch(_)) => {}
                None => break,
            }
        }
        if left > 0 {
            ctx.gen.skip_branches(left);
        }
    }

    /// Executes `branches` branch events of the *current* context
    /// (unmeasured) — the background burst between a forced switch pair.
    fn run_context_branches(&mut self, branches: u64) {
        let hw = ThreadId::new(0);
        let idx = self.current;
        let cfg = &self.cfg;
        let fe = &mut self.fe;
        let ctx = &mut self.contexts[idx];
        let mut done = 0u64;
        while done < branches {
            if ctx.buf.is_empty() {
                ctx.gen.fill(&mut ctx.buf);
            }
            match ctx.buf.pop().expect("buffer was just filled") {
                TraceEvent::Branch(rec) => {
                    self.clock += execute_branch(fe, cfg, hw, &rec, &mut ctx.stats);
                    done += 1;
                }
                TraceEvent::PrivilegeSwitch(to) => {
                    fe.handle_event(CoreEvent::PrivilegeSwitch { hw_thread: hw, to });
                    ctx.stats.privilege_switches += 1;
                    self.clock += cfg.trap_overhead as f64;
                }
            }
        }
    }

    /// Executes `branches` branch events of the *current* context through
    /// the functional (timing-free) path: predictor, BTB, RAS and key
    /// state mutate bit-identically to timed execution (see
    /// [`train_branch`]) while the clock and all statistics stay
    /// untouched. Privilege switches still reach the front-end — the
    /// Noisy-XOR family rekeys on them — but their trap overhead is
    /// timing bookkeeping and is skipped.
    fn train_context_branches(&mut self, branches: u64) {
        let hw = ThreadId::new(0);
        let idx = self.current;
        let cfg = &self.cfg;
        let fe = &mut self.fe;
        let ctx = &mut self.contexts[idx];
        let mut done = 0u64;
        while done < branches {
            if ctx.buf.is_empty() {
                ctx.gen.fill(&mut ctx.buf);
            }
            match ctx.buf.pop().expect("buffer was just filled") {
                TraceEvent::Branch(rec) => {
                    train_branch(fe, cfg, hw, &rec);
                    done += 1;
                }
                TraceEvent::PrivilegeSwitch(to) => {
                    fe.handle_event(CoreEvent::PrivilegeSwitch { hw_thread: hw, to });
                }
            }
        }
    }

    /// Replaces each context's (still-unallocated) event buffer with one
    /// recycled from `pool`, reusing the pooled allocation. Intended for
    /// arena-style callers that run many short jobs; call before the
    /// first `run_*`, since any already-buffered events are discarded.
    pub fn adopt_buffers(&mut self, pool: &mut Vec<EventBuffer>) {
        for ctx in &mut self.contexts {
            if let Some(mut buf) = pool.pop() {
                buf.recycle();
                ctx.buf = buf;
            }
        }
    }

    /// Moves this simulator's event buffers into `pool` so a later
    /// simulator can [`Self::adopt_buffers`] their allocations. The sim
    /// stays usable and re-allocates lazily if run again.
    pub fn release_buffers(&mut self, pool: &mut Vec<EventBuffer>) {
        for ctx in &mut self.contexts {
            pool.push(std::mem::take(&mut ctx.buf));
        }
    }

    /// Overrides the context-switch interval (in cycles) so tests can
    /// exercise the scheduler without simulating millions of branches.
    #[cfg(test)]
    fn force_switch_interval(&mut self, cycles: u64) {
        self.interval = cycles;
        self.next_switch = cycles as f64;
    }

    /// Global clock in cycles.
    pub fn clock(&self) -> f64 {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(mech: Mechanism, interval: SwitchInterval, seed: u64) -> SingleCoreSim {
        SingleCoreSim::new(
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            mech,
            interval,
            &["gcc", "calculix"],
            seed,
        )
        .expect("sim")
    }

    #[test]
    fn needs_two_workloads() {
        let err = SingleCoreSim::new(
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            Mechanism::Baseline,
            SwitchInterval::M8,
            &["gcc"],
            1,
        );
        assert!(err.is_err());
    }

    #[test]
    fn runs_and_reports_target_stats() {
        // gcc is the hardest profile and gshare warms slowly; give it a
        // realistic warm-up before judging accuracy.
        let mut s = sim(Mechanism::Baseline, SwitchInterval::M4, 42);
        let stats = s.run_target(150_000, 200_000);
        assert!(stats.instructions > 200_000);
        assert!(stats.cond_branches > 100_000);
        assert!(stats.cycles > 0);
        assert!(
            stats.cond_accuracy() > 0.68,
            "accuracy {}",
            stats.cond_accuracy()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sim(Mechanism::noisy_xor_bp(), SwitchInterval::M8, 7).run_target(1_000, 10_000);
        let b = sim(Mechanism::noisy_xor_bp(), SwitchInterval::M8, 7).run_target(1_000, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn context_switches_fire() {
        // 20k branches at ~6 instr each / IPC 2 ≈ 60k cycles: use a short
        // synthetic interval via M4 being too long — so instead verify via
        // privilege switches (always present) and run enough work for at
        // least the scheduler to be exercised once in a long run.
        let mut s = sim(Mechanism::Baseline, SwitchInterval::M4, 3);
        let stats = s.run_target(0, 400_000);
        // gcc makes ~10 syscalls/Minstr; 400k branches ≈ 2.8M instr.
        assert!(stats.privilege_switches > 0, "no privilege switches seen");
    }

    #[test]
    fn batched_loop_matches_scalar_reference() {
        // Short switch interval so the batched loop's step/switch
        // attribution is exercised many times, not just its drain path.
        for mech in [
            Mechanism::Baseline,
            Mechanism::noisy_xor_bp(),
            Mechanism::CompleteFlush,
        ] {
            let mut batched = sim(mech, SwitchInterval::M8, 13);
            batched.force_switch_interval(25_000);
            let mut scalar = sim(mech, SwitchInterval::M8, 13);
            scalar.force_switch_interval(25_000);
            let a = batched.run_target(2_000, 40_000);
            let b = scalar.run_target_scalar(2_000, 40_000);
            assert_eq!(a, b, "stats diverged under {mech:?}");
            assert_eq!(
                batched.clock().to_bits(),
                scalar.clock().to_bits(),
                "clock diverged under {mech:?}"
            );
        }
    }

    #[test]
    fn batched_and_scalar_phases_can_interleave() {
        // A scalar phase after a batched phase must consume the buffered
        // remainder, not skip ahead in the generator stream.
        let mut mixed = sim(Mechanism::Baseline, SwitchInterval::M8, 21);
        let mut pure = sim(Mechanism::Baseline, SwitchInterval::M8, 21);
        mixed.run_target(0, 5_000);
        let a = mixed.run_target_scalar(0, 5_000);
        pure.run_target(0, 5_000);
        let b = pure.run_target(0, 5_000);
        assert_eq!(a, b);
        assert_eq!(mixed.clock().to_bits(), pure.clock().to_bits());
    }

    #[test]
    fn warm_then_measure_equals_run_target() {
        let mut split = sim(Mechanism::noisy_xor_bp(), SwitchInterval::M4, 31);
        split.warm(3_000);
        let a = split.run_measure(20_000);
        let mut joint = sim(Mechanism::noisy_xor_bp(), SwitchInterval::M4, 31);
        let b = joint.run_target(3_000, 20_000);
        assert_eq!(a, b);
        assert_eq!(split.clock().to_bits(), joint.clock().to_bits());
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let mut s = sim(Mechanism::CompleteFlush, SwitchInterval::M8, 19);
        s.warm(5_000);
        let mut restored = s.try_clone().expect("static predictors clone");
        let a = s.run_measure(25_000);
        let b = restored.run_measure(25_000);
        assert_eq!(a, b);
        assert_eq!(s.clock().to_bits(), restored.clock().to_bits());
    }

    #[test]
    fn retargeted_checkpoint_matches_fresh_warm() {
        // Warm under M8 with no switches fired, retarget to M4: must be
        // bit-identical to warming under M4 from scratch.
        let mut warm8 = sim(Mechanism::CompleteFlush, SwitchInterval::M8, 23);
        warm8.warm(4_000);
        assert_eq!(warm8.context_switches(), 0);
        assert!(warm8.retarget_interval(SwitchInterval::M4));
        let a = warm8.run_measure(30_000);
        let mut fresh4 = sim(Mechanism::CompleteFlush, SwitchInterval::M4, 23);
        fresh4.warm(4_000);
        let b = fresh4.run_measure(30_000);
        assert_eq!(a, b);
        assert_eq!(warm8.clock().to_bits(), fresh4.clock().to_bits());
    }

    #[test]
    fn retarget_refuses_after_switches_or_past_deadline() {
        let mut s = sim(Mechanism::Baseline, SwitchInterval::M8, 29);
        s.force_switch_interval(10_000);
        s.warm(20_000);
        assert!(s.context_switches() > 0);
        assert!(!s.retarget_interval(SwitchInterval::M4));
    }

    #[test]
    fn sampled_run_is_deterministic() {
        let plan = crate::SamplingPlan::quick();
        let run = |seed| {
            let mut s = sim(Mechanism::noisy_xor_bp(), SwitchInterval::M8, seed);
            s.warm(2_000);
            s.run_sampled(&plan)
        };
        let a = run(37);
        let b = run(37);
        assert_eq!(a, b);
        assert_eq!(a.steady_cycles.len(), plan.steady_windows as usize);
        assert_eq!(a.event_cycles.len(), plan.event_windows as usize);
        for (x, y) in a.steady_cycles.iter().zip(&b.steady_cycles) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sampled_event_windows_see_the_storm() {
        // A Complete Flush storm makes post-switch windows markedly more
        // expensive per branch than steady windows; Baseline's pays only
        // the 600-cycle resume overhead plus mild repollution.
        let plan = crate::SamplingPlan::quick();
        let measure = |mech| {
            let mut s = sim(mech, SwitchInterval::M8, 41);
            s.warm(30_000);
            let m = s.run_sampled(&plan);
            let steady: f64 = m.steady_cycles.iter().sum::<f64>()
                / m.steady_cycles.len() as f64
                / plan.window as f64;
            let event: f64 = m.event_cycles.iter().sum::<f64>()
                / m.event_cycles.len() as f64
                / plan.event_window as f64;
            (steady, event)
        };
        let (cf_steady, cf_event) = measure(Mechanism::CompleteFlush);
        let (base_steady, base_event) = measure(Mechanism::Baseline);
        assert!(
            cf_event > cf_steady * 1.2,
            "no CF storm: {cf_steady} vs {cf_event}"
        );
        assert!(
            cf_event - cf_steady > (base_event - base_steady) * 1.5,
            "CF storm not larger than baseline resume: cf {cf_event}/{cf_steady} base {base_event}/{base_steady}"
        );
    }

    #[test]
    fn functional_gap_execution_matches_timed_execution() {
        // Execute the same region once timed and once functionally: the
        // measured windows that follow must be bit-identical — the core
        // soundness claim of the hybrid engine.
        for mech in [
            Mechanism::Baseline,
            Mechanism::noisy_xor_bp(),
            Mechanism::CompleteFlush,
        ] {
            let mut timed = sim(mech, SwitchInterval::Off, 51);
            let mut functional = sim(mech, SwitchInterval::Off, 51);
            timed.warm(5_000);
            functional.warm(5_000);
            timed.run_phase(12_000, false);
            functional.train_context_branches(12_000);
            let a = timed.run_measure(20_000);
            let b = functional.run_measure(20_000);
            assert_eq!(a, b, "functional gap diverged under {mech:?}");
        }
    }

    #[test]
    fn functional_sampled_run_is_deterministic_and_plausible() {
        let plan = crate::SamplingPlan::quick_functional();
        let run = |seed| {
            let mut s = sim(Mechanism::CompleteFlush, SwitchInterval::M8, seed);
            s.warm(2_000);
            s.run_sampled(&plan)
        };
        let a = run(37);
        let b = run(37);
        assert_eq!(a, b);
        assert_eq!(a.steady_cycles.len(), plan.steady_windows as usize);
        assert!(a.steady_cycles.iter().all(|c| *c > 0.0));
        assert!(a.event_cycles.iter().all(|c| *c > 0.0));
    }

    #[test]
    fn windowed_sampled_run_matches_serial() {
        // Each window measured from its own clone of the warm state must
        // reproduce the serial run bit-for-bit, in both gap modes.
        for plan in [
            crate::SamplingPlan::quick(),
            crate::SamplingPlan::quick_functional(),
        ] {
            let mut warm = sim(Mechanism::CompleteFlush, SwitchInterval::M8, 61);
            warm.warm(4_000);
            let mut serial = warm.try_clone().expect("clone");
            let m = serial.run_sampled(&plan);
            let mut agg = PredictionStats::new();
            for index in 0..plan.total_windows() {
                let mut solo = warm.try_clone().expect("clone");
                let (cycles, stats) = solo.run_sampled_window(&plan, index);
                if index < plan.steady_windows {
                    let want = m.steady_cycles[index as usize];
                    assert_eq!(cycles.to_bits(), want.to_bits(), "steady {index}");
                    assert_eq!(stats.cycles, want as u64);
                    agg += stats;
                } else {
                    let want = m.event_cycles[(index - plan.steady_windows) as usize];
                    assert_eq!(cycles.to_bits(), want.to_bits(), "event {index}");
                }
            }
            assert_eq!(agg, m.stats, "reassembled steady stats");
        }
    }

    #[test]
    fn mechanisms_do_not_change_instruction_stream() {
        let base = sim(Mechanism::Baseline, SwitchInterval::M8, 5).run_target(1_000, 15_000);
        let xor = sim(Mechanism::noisy_xor_bp(), SwitchInterval::M8, 5).run_target(1_000, 15_000);
        assert_eq!(base.cond_branches, xor.cond_branches, "same measured work");
        assert_eq!(base.instructions, xor.instructions);
    }
}
