//! SMT core: several hardware threads sharing one predictor front-end.
//!
//! Models the paper's gem5 experiments: one application per hardware
//! thread, a shared direction predictor and BTB, per-thread RAS and
//! histories. Periodic timer interrupts fire a context-switch event on
//! each hardware thread (the mechanism's trigger).
//!
//! The paper runs these benchmarks in gem5's **System Call Emulation**
//! mode: syscalls are emulated by the simulator, so no kernel code runs
//! and no privilege switches occur. We reproduce that by zeroing the
//! workload's syscall rate — on the SMT core the only isolation trigger
//! is the timer, exactly as in the paper (which is why Complete Flush,
//! which destroys *every* thread's state per event, loses to Noisy-XOR-BP,
//! which re-keys only the switching thread).

use sbp_core::{FrontendConfig, Mechanism, SecureFrontend};
use sbp_predictors::PredictorKind;
use sbp_trace::{EventBuffer, TraceEvent, TraceGenerator, WorkloadProfile};
use sbp_types::{CoreEvent, PredictionStats, SbpError, ThreadId};

use crate::config::{CoreConfig, SwitchInterval};
use crate::timing::{execute_branch, execute_branch_scalar};

#[derive(Debug)]
struct SmtThread {
    gen: TraceGenerator,
    stats: PredictionStats,
    clock: f64,
    next_switch: f64,
    /// Pre-generated event batch (see [`EventBuffer`]); the SMT scheduler
    /// interleaves threads per event, so batching here only amortizes the
    /// generator dispatch, not the scheduling itself.
    buf: EventBuffer,
}

impl SmtThread {
    /// Next event from the buffered batch, refilling when drained. The
    /// event sequence is identical to calling the generator directly.
    #[inline]
    fn next_event(&mut self) -> TraceEvent {
        match self.buf.pop() {
            Some(ev) => ev,
            None => {
                self.gen.fill(&mut self.buf);
                self.buf.pop().expect("buffer was just filled")
            }
        }
    }
}

/// Result of an SMT run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtResult {
    /// Wall-clock cycles to complete the measured instruction budget.
    pub cycles: f64,
    /// Instructions executed during measurement (all threads).
    pub instructions: u64,
    /// Per-thread statistics.
    pub per_thread: Vec<PredictionStats>,
}

impl SmtResult {
    /// Combined conditional MPKI across threads.
    pub fn mpki(&self) -> f64 {
        let mispredicts: u64 = self.per_thread.iter().map(|s| s.cond_mispredicts).sum();
        if self.instructions == 0 {
            0.0
        } else {
            mispredicts as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// An SMT core simulation.
pub struct SmtSim {
    cfg: CoreConfig,
    fe: SecureFrontend,
    threads: Vec<SmtThread>,
    interval: u64,
}

impl std::fmt::Debug for SmtSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtSim")
            .field("core", &self.cfg.name)
            .field("mechanism", &self.fe.mechanism())
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl SmtSim {
    /// Builds an SMT core with one workload per hardware thread.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown workloads or fewer than two threads.
    pub fn new(
        cfg: CoreConfig,
        predictor: PredictorKind,
        mechanism: Mechanism,
        interval: SwitchInterval,
        workloads: &[&str],
        seed: u64,
    ) -> Result<Self, SbpError> {
        if workloads.len() < 2 {
            return Err(SbpError::config(
                "an SMT core needs at least two hardware threads",
            ));
        }
        let threads = workloads
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut profile = WorkloadProfile::by_name(name)?;
                // gem5 SE mode: syscalls are emulated, never executed.
                profile.syscalls_per_minstr = 0.0;
                Ok(SmtThread {
                    gen: TraceGenerator::new(
                        &profile,
                        0x1000_0000 + (i as u64) * 0x0800_0000,
                        sbp_types::rng::SplitMix64::derive(seed, 100 + i as u64),
                    ),
                    stats: PredictionStats::new(),
                    clock: 0.0,
                    buf: EventBuffer::default(),
                    // Stagger the per-thread timers across the interval:
                    // real timer interrupts are not synchronized between
                    // hardware threads, and coinciding flushes would
                    // under-charge Complete Flush.
                    next_switch: interval.cycles() as f64 * (i + 1) as f64 / workloads.len() as f64,
                })
            })
            .collect::<Result<Vec<_>, SbpError>>()?;
        let fe_cfg = FrontendConfig {
            predictor,
            btb: cfg.btb,
            ras_depth: cfg.ras_depth,
            threads: workloads.len(),
            mechanism,
            key_seed: sbp_types::rng::SplitMix64::derive(seed, 0xdead),
        };
        Ok(SmtSim {
            cfg,
            fe: SecureFrontend::new(fe_cfg),
            threads,
            interval: interval.cycles(),
        })
    }

    /// Advances the globally-least-advanced thread by one event.
    ///
    /// `SCALAR` selects the uncached reference front-end path; the event
    /// stream, scheduling, and timing are identical either way.
    fn step_generic<const SCALAR: bool>(&mut self) -> u64 {
        let idx = self
            .threads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.clock.total_cmp(&b.1.clock))
            .map(|(i, _)| i)
            .expect("non-empty thread list");
        let hw = ThreadId::new(idx as u8);

        // Timer interrupt on this hardware thread.
        if self.interval != u64::MAX && self.threads[idx].clock >= self.threads[idx].next_switch {
            self.fe
                .handle_event(CoreEvent::ContextSwitch { hw_thread: hw });
            self.threads[idx].stats.context_switches += 1;
            self.threads[idx].clock += self.cfg.context_switch_overhead as f64;
            let iv = self.interval as f64;
            self.threads[idx].next_switch += iv;
        }

        match self.threads[idx].next_event() {
            TraceEvent::Branch(rec) => {
                let t = &mut self.threads[idx];
                let before = t.stats.instructions;
                let cycles = if SCALAR {
                    execute_branch_scalar(&mut self.fe, &self.cfg, hw, &rec, &mut t.stats)
                } else {
                    execute_branch(&mut self.fe, &self.cfg, hw, &rec, &mut t.stats)
                };
                t.clock += cycles;
                t.stats.instructions - before
            }
            TraceEvent::PrivilegeSwitch(to) => {
                self.fe
                    .handle_event(CoreEvent::PrivilegeSwitch { hw_thread: hw, to });
                let t = &mut self.threads[idx];
                t.stats.privilege_switches += 1;
                t.clock += self.cfg.trap_overhead as f64;
                0
            }
        }
    }

    /// Runs `warmup_instr` instructions (discarded), then measures the
    /// wall-clock cycles to execute `measure_instr` further instructions
    /// across all threads (the paper's methodology).
    pub fn run(&mut self, warmup_instr: u64, measure_instr: u64) -> SmtResult {
        self.run_generic::<false>(warmup_instr, measure_instr)
    }

    /// [`Self::run`] through the uncached reference front-end path; kept
    /// for equivalence tests and the branches-per-second benchmark.
    /// Results are bit-identical to [`Self::run`].
    pub fn run_scalar(&mut self, warmup_instr: u64, measure_instr: u64) -> SmtResult {
        self.run_generic::<true>(warmup_instr, measure_instr)
    }

    fn run_generic<const SCALAR: bool>(
        &mut self,
        warmup_instr: u64,
        measure_instr: u64,
    ) -> SmtResult {
        let mut executed = 0u64;
        while executed < warmup_instr {
            executed += self.step_generic::<SCALAR>();
        }
        let start_wall = self.wall_clock();
        for t in &mut self.threads {
            t.stats = PredictionStats::new();
        }
        let mut measured = 0u64;
        while measured < measure_instr {
            measured += self.step_generic::<SCALAR>();
        }
        let cycles = self.wall_clock() - start_wall;
        for t in &mut self.threads {
            t.stats.cycles = t.clock as u64;
        }
        SmtResult {
            cycles,
            instructions: measured,
            per_thread: self.threads.iter().map(|t| t.stats).collect(),
        }
    }

    fn wall_clock(&self) -> f64 {
        self.threads.iter().map(|t| t.clock).fold(0.0, f64::max)
    }

    /// Replaces each hardware thread's (still-unallocated) event buffer
    /// with one recycled from `pool`; see
    /// [`crate::SingleCoreSim::adopt_buffers`].
    pub fn adopt_buffers(&mut self, pool: &mut Vec<EventBuffer>) {
        for t in &mut self.threads {
            if let Some(mut buf) = pool.pop() {
                buf.recycle();
                t.buf = buf;
            }
        }
    }

    /// Moves this simulator's event buffers into `pool` for reuse; see
    /// [`crate::SingleCoreSim::release_buffers`].
    pub fn release_buffers(&mut self, pool: &mut Vec<EventBuffer>) {
        for t in &mut self.threads {
            pool.push(std::mem::take(&mut t.buf));
        }
    }

    /// The shared front-end (observability).
    pub fn frontend(&self) -> &SecureFrontend {
        &self.fe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(mech: Mechanism, seed: u64) -> SmtSim {
        SmtSim::new(
            CoreConfig::gem5(),
            PredictorKind::Gshare,
            mech,
            SwitchInterval::M8,
            &["zeusmp", "lbm"],
            seed,
        )
        .expect("sim")
    }

    #[test]
    fn needs_two_threads() {
        let r = SmtSim::new(
            CoreConfig::gem5(),
            PredictorKind::Gshare,
            Mechanism::Baseline,
            SwitchInterval::M8,
            &["gcc"],
            1,
        );
        assert!(r.is_err());
    }

    #[test]
    fn runs_and_measures() {
        let mut s = sim(Mechanism::Baseline, 11);
        let r = s.run(20_000, 200_000);
        assert!(r.cycles > 0.0);
        assert!(r.instructions >= 200_000);
        assert_eq!(r.per_thread.len(), 2);
        assert!(r.mpki() >= 0.0);
        // Both threads progressed.
        for t in &r.per_thread {
            assert!(t.instructions > 10_000, "thread starved: {t:?}");
        }
    }

    #[test]
    fn deterministic() {
        let a = sim(Mechanism::CompleteFlush, 5).run(10_000, 100_000);
        let b = sim(Mechanism::CompleteFlush, 5).run(10_000, 100_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.per_thread, b.per_thread);
    }

    #[test]
    fn batched_run_matches_scalar_reference() {
        for mech in [Mechanism::noisy_xor_bp(), Mechanism::CompleteFlush] {
            let a = sim(mech, 17).run(10_000, 120_000);
            let b = sim(mech, 17).run_scalar(10_000, 120_000);
            assert_eq!(a, b, "SMT results diverged under {mech:?}");
        }
    }

    #[test]
    fn threads_progress_in_parallel() {
        let mut s = sim(Mechanism::Baseline, 9);
        let r = s.run(0, 100_000);
        let i0 = r.per_thread[0].instructions as f64;
        let i1 = r.per_thread[1].instructions as f64;
        let ratio = i0.max(i1) / i0.min(i1).max(1.0);
        assert!(ratio < 3.0, "thread imbalance {ratio}");
    }
}
