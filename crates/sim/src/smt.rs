//! SMT core: several hardware threads sharing one predictor front-end.
//!
//! Models the paper's gem5 experiments: one application per hardware
//! thread, a shared direction predictor and BTB, per-thread RAS and
//! histories. Periodic timer interrupts fire a context-switch event on
//! each hardware thread (the mechanism's trigger).
//!
//! The paper runs these benchmarks in gem5's **System Call Emulation**
//! mode: syscalls are emulated by the simulator, so no kernel code runs
//! and no privilege switches occur. We reproduce that by zeroing the
//! workload's syscall rate — on the SMT core the only isolation trigger
//! is the timer, exactly as in the paper (which is why Complete Flush,
//! which destroys *every* thread's state per event, loses to Noisy-XOR-BP,
//! which re-keys only the switching thread).

use sbp_core::{FrontendConfig, Mechanism, SecureFrontend};
use sbp_predictors::PredictorKind;
use sbp_trace::{
    EventBuffer, EventSource, TraceEvent, TraceGenerator, TraceReplayer, WorkloadProfile,
};
use sbp_types::{CoreEvent, PredictionStats, SbpError, ThreadId};

use crate::config::{CoreConfig, SwitchInterval};
use crate::profile::{self, Phase};
use crate::sampling::{GapMode, SampledMeasurement, SamplingPlan};
use crate::timing::{execute_branch, execute_branch_scalar, train_branch_clocked};

#[derive(Debug)]
struct SmtThread {
    gen: EventSource,
    stats: PredictionStats,
    clock: f64,
    next_switch: f64,
    /// Pre-generated event batch (see [`EventBuffer`]); the SMT scheduler
    /// interleaves threads per event, so batching here only amortizes the
    /// generator dispatch, not the scheduling itself.
    buf: EventBuffer,
}

impl SmtThread {
    /// Next event from the buffered batch, refilling when drained. The
    /// event sequence is identical to calling the generator directly.
    #[inline]
    fn next_event(&mut self) -> TraceEvent {
        match self.buf.pop() {
            Some(ev) => ev,
            None => {
                self.gen.fill(&mut self.buf);
                self.buf.pop().expect("buffer was just filled")
            }
        }
    }
}

/// Result of an SMT run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtResult {
    /// Wall-clock cycles to complete the measured instruction budget.
    pub cycles: f64,
    /// Instructions executed during measurement (all threads).
    pub instructions: u64,
    /// Per-thread statistics.
    pub per_thread: Vec<PredictionStats>,
}

impl SmtResult {
    /// Combined conditional MPKI across threads.
    pub fn mpki(&self) -> f64 {
        let mispredicts: u64 = self.per_thread.iter().map(|s| s.cond_mispredicts).sum();
        if self.instructions == 0 {
            0.0
        } else {
            mispredicts as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// An SMT core simulation.
pub struct SmtSim {
    cfg: CoreConfig,
    fe: SecureFrontend,
    threads: Vec<SmtThread>,
    interval: u64,
}

impl std::fmt::Debug for SmtSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtSim")
            .field("core", &self.cfg.name)
            .field("mechanism", &self.fe.mechanism())
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl SmtSim {
    /// Builds an SMT core with one workload per hardware thread.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown workloads or fewer than two threads.
    pub fn new(
        cfg: CoreConfig,
        predictor: PredictorKind,
        mechanism: Mechanism,
        interval: SwitchInterval,
        workloads: &[&str],
        seed: u64,
    ) -> Result<Self, SbpError> {
        if workloads.len() < 2 {
            return Err(SbpError::config(
                "an SMT core needs at least two hardware threads",
            ));
        }
        let threads = workloads
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let base = 0x1000_0000 + (i as u64) * 0x0800_0000;
                let thread_seed = sbp_types::rng::SplitMix64::derive(seed, 100 + i as u64);
                let gen = match sbp_trace::parse_replay(name) {
                    Some((workload, dir)) => {
                        // Replayed traces must be recorded from the same
                        // SE-mode (syscall-free) generator configuration;
                        // the campaign recorder guarantees that.
                        let path = sbp_trace::replay_trace_path(
                            std::path::Path::new(dir),
                            workload,
                            base,
                            thread_seed,
                        );
                        EventSource::Replay(TraceReplayer::open(&path)?)
                    }
                    None => {
                        let mut profile = WorkloadProfile::by_name(name)?;
                        // gem5 SE mode: syscalls are emulated, never executed.
                        profile.syscalls_per_minstr = 0.0;
                        EventSource::Generator(TraceGenerator::new(&profile, base, thread_seed))
                    }
                };
                Ok(SmtThread {
                    gen,
                    stats: PredictionStats::new(),
                    clock: 0.0,
                    buf: EventBuffer::default(),
                    // Stagger the per-thread timers across the interval:
                    // real timer interrupts are not synchronized between
                    // hardware threads, and coinciding flushes would
                    // under-charge Complete Flush.
                    next_switch: interval.cycles() as f64 * (i + 1) as f64 / workloads.len() as f64,
                })
            })
            .collect::<Result<Vec<_>, SbpError>>()?;
        let fe_cfg = FrontendConfig {
            predictor,
            btb: cfg.btb,
            ras_depth: cfg.ras_depth,
            threads: workloads.len(),
            mechanism,
            key_seed: sbp_types::rng::SplitMix64::derive(seed, 0xdead),
        };
        Ok(SmtSim {
            cfg,
            fe: SecureFrontend::new(fe_cfg),
            threads,
            interval: interval.cycles(),
        })
    }

    /// Advances the globally-least-advanced thread by one event.
    ///
    /// `SCALAR` selects the uncached reference front-end path; the event
    /// stream, scheduling, and timing are identical either way.
    fn step_generic<const SCALAR: bool>(&mut self) -> u64 {
        let idx = self.next_thread();
        let hw = ThreadId::new(idx as u8);

        // Timer interrupt on this hardware thread.
        if self.interval != u64::MAX && self.threads[idx].clock >= self.threads[idx].next_switch {
            self.fe
                .handle_event(CoreEvent::ContextSwitch { hw_thread: hw });
            self.threads[idx].stats.context_switches += 1;
            self.threads[idx].clock += self.cfg.context_switch_overhead as f64;
            let iv = self.interval as f64;
            self.threads[idx].next_switch += iv;
        }

        match self.threads[idx].next_event() {
            TraceEvent::Branch(rec) => {
                let t = &mut self.threads[idx];
                let before = t.stats.instructions;
                let cycles = if SCALAR {
                    execute_branch_scalar(&mut self.fe, &self.cfg, hw, &rec, &mut t.stats)
                } else {
                    execute_branch(&mut self.fe, &self.cfg, hw, &rec, &mut t.stats)
                };
                t.clock += cycles;
                t.stats.instructions - before
            }
            TraceEvent::PrivilegeSwitch(to) => {
                self.fe
                    .handle_event(CoreEvent::PrivilegeSwitch { hw_thread: hw, to });
                let t = &mut self.threads[idx];
                t.stats.privilege_switches += 1;
                t.clock += self.cfg.trap_overhead as f64;
                0
            }
        }
    }

    /// The thread the SMT scheduler advances next: the one with the
    /// least-advanced clock.
    #[inline]
    fn next_thread(&self) -> usize {
        self.threads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.clock.total_cmp(&b.1.clock))
            .map(|(i, _)| i)
            .expect("non-empty thread list")
    }

    /// Functional step: advances the least-advanced thread by one event
    /// through the timing-free trainer. Per-thread clocks still advance
    /// bit-identically to [`Self::step_generic`] — the SMT scheduler is
    /// clock-driven, so dropping the clock would change the thread
    /// interleaving and with it the shared-predictor state — but all
    /// statistics bookkeeping is skipped. Returns instructions retired.
    ///
    /// Only valid with the natural timer disabled (sampled mode): the
    /// timer path mutates stats this step does not replicate.
    fn step_functional(&mut self) -> u64 {
        debug_assert_eq!(self.interval, u64::MAX, "functional step needs timers off");
        let idx = self.next_thread();
        let hw = ThreadId::new(idx as u8);
        match self.threads[idx].next_event() {
            TraceEvent::Branch(rec) => {
                let cycles = train_branch_clocked(&mut self.fe, &self.cfg, hw, &rec);
                self.threads[idx].clock += cycles;
                rec.instructions()
            }
            TraceEvent::PrivilegeSwitch(to) => {
                self.fe
                    .handle_event(CoreEvent::PrivilegeSwitch { hw_thread: hw, to });
                self.threads[idx].clock += self.cfg.trap_overhead as f64;
                0
            }
        }
    }

    /// Executes `instructions` across all threads functionally (see
    /// [`Self::step_functional`]).
    fn run_functional(&mut self, instructions: u64) {
        let mut executed = 0u64;
        while executed < instructions {
            executed += self.step_functional();
        }
    }

    /// Runs `warmup_instr` instructions (discarded), then measures the
    /// wall-clock cycles to execute `measure_instr` further instructions
    /// across all threads (the paper's methodology).
    pub fn run(&mut self, warmup_instr: u64, measure_instr: u64) -> SmtResult {
        self.run_generic::<false>(warmup_instr, measure_instr)
    }

    /// [`Self::run`] through the uncached reference front-end path; kept
    /// for equivalence tests and the branches-per-second benchmark.
    /// Results are bit-identical to [`Self::run`].
    pub fn run_scalar(&mut self, warmup_instr: u64, measure_instr: u64) -> SmtResult {
        self.run_generic::<true>(warmup_instr, measure_instr)
    }

    fn run_generic<const SCALAR: bool>(
        &mut self,
        warmup_instr: u64,
        measure_instr: u64,
    ) -> SmtResult {
        let mut executed = 0u64;
        while executed < warmup_instr {
            executed += self.step_generic::<SCALAR>();
        }
        self.run_measure_generic::<SCALAR>(measure_instr)
    }

    /// Runs the warm-up phase: `warmup_instr` instructions across all
    /// threads, statistics discarded. `warm(w)` followed by
    /// [`Self::run_measure`] is bit-identical to [`Self::run`]`(w, m)`;
    /// the split lets callers checkpoint the warm state
    /// ([`Self::try_clone`]).
    pub fn warm(&mut self, warmup_instr: u64) {
        profile::time(Phase::Warm, || self.run_timed_unmeasured(warmup_instr));
    }

    /// Timed execution of `instr` instructions with statistics kept but
    /// unmeasured — the warm-up loop, also used for fast-forward rewarm
    /// (where it is attributed to the gap phase, not warm-up).
    fn run_timed_unmeasured(&mut self, instr: u64) {
        let mut executed = 0u64;
        while executed < instr {
            executed += self.step_generic::<false>();
        }
    }

    /// The measurement phase of [`Self::run`]: resets per-thread
    /// statistics and measures `measure_instr` further instructions.
    pub fn run_measure(&mut self, measure_instr: u64) -> SmtResult {
        self.run_measure_generic::<false>(measure_instr)
    }

    fn run_measure_generic<const SCALAR: bool>(&mut self, measure_instr: u64) -> SmtResult {
        profile::time(Phase::Measure, || {
            let start_wall = self.wall_clock();
            for t in &mut self.threads {
                t.stats = PredictionStats::new();
            }
            let mut measured = 0u64;
            while measured < measure_instr {
                measured += self.step_generic::<SCALAR>();
            }
            let cycles = self.wall_clock() - start_wall;
            for t in &mut self.threads {
                t.stats.cycles = t.clock as u64;
            }
            SmtResult {
                cycles,
                instructions: measured,
                per_thread: self.threads.iter().map(|t| t.stats).collect(),
            }
        })
    }

    /// Deep-copies the whole SMT simulator (shared front-end, per-thread
    /// generator cursors, clocks, buffered events), or `None` when the
    /// front-end wraps a custom predictor. A clone continues
    /// bit-identically — the warm-state checkpoint primitive.
    pub fn try_clone(&self) -> Option<Self> {
        Some(SmtSim {
            cfg: self.cfg,
            fe: self.fe.try_clone()?,
            threads: self
                .threads
                .iter()
                .map(|t| SmtThread {
                    gen: t.gen.clone(),
                    stats: t.stats,
                    clock: t.clock,
                    next_switch: t.next_switch,
                    buf: t.buf.clone(),
                })
                .collect(),
            interval: self.interval,
        })
    }

    /// Total timer context switches fired so far (all threads).
    pub fn context_switches(&self) -> u64 {
        self.threads.iter().map(|t| t.stats.context_switches).sum()
    }

    /// Re-aims a warm checkpoint at a different switch interval (see
    /// `SingleCoreSim::retarget_interval`). Sound only when no timer has
    /// fired and every thread's clock is still short of its new staggered
    /// deadline; returns `false`, leaving the simulator untouched,
    /// otherwise.
    pub fn retarget_interval(&mut self, interval: SwitchInterval) -> bool {
        if self.context_switches() != 0 {
            return false;
        }
        let cycles = interval.cycles();
        let n = self.threads.len();
        if cycles != u64::MAX {
            for (i, t) in self.threads.iter().enumerate() {
                if t.clock >= cycles as f64 * (i + 1) as f64 / n as f64 {
                    return false;
                }
            }
        }
        self.interval = cycles;
        for (i, t) in self.threads.iter_mut().enumerate() {
            t.next_switch = cycles as f64 * (i + 1) as f64 / n as f64;
        }
        true
    }

    /// Runs a sampled measurement from the current (warm) state: steady
    /// windows, then forced-switch event windows (one thread's timer
    /// event fired explicitly, round-robin across threads). The natural
    /// timer is disabled for the rest of this simulator's life; switches
    /// enter the estimate analytically per interval
    /// ([`crate::sampling::estimate_cycles`] with `threads = T`).
    pub fn run_sampled(&mut self, plan: &SamplingPlan) -> SampledMeasurement {
        self.disable_timers();
        let n = self.threads.len();
        let mut steady_cycles = Vec::with_capacity(plan.steady_windows as usize);
        let mut agg = vec![PredictionStats::new(); n];
        for _ in 0..plan.steady_windows {
            steady_cycles.push(self.sampled_steady_window(plan));
            for (a, t) in agg.iter_mut().zip(&self.threads) {
                *a += t.stats;
            }
        }
        let mut event_cycles = Vec::with_capacity(plan.event_windows as usize);
        for w in 0..plan.event_windows {
            event_cycles.push(self.sampled_event_window(plan, w as usize % n));
        }
        for (a, t) in agg.iter_mut().zip(&self.threads) {
            a.cycles = t.clock as u64;
        }
        let mut stats = PredictionStats::new();
        for a in &agg {
            stats += *a;
        }
        SampledMeasurement {
            steady_cycles,
            steady_units: plan.window,
            event_cycles,
            event_units: plan.event_window,
            stats,
            per_thread: agg,
            threads: n as u32,
            steady_weights: Vec::new(),
        }
    }

    /// Runs only measurement window `index` of the sampled schedule from
    /// the current (warm) state, returning its wall-clock cycles and the
    /// per-thread statistics it accumulated (meaningful for steady
    /// windows; event-window statistics are never aggregated).
    ///
    /// Regions before the requested window — gaps, rewarm, forced
    /// switches and the earlier measured windows — replay through
    /// `step_functional`, which keeps per-thread clocks (the
    /// scheduler is clock-driven) so the interleaving, shared-predictor
    /// state and generator cursors are bit-identical to the serial
    /// [`Self::run_sampled`] at the window's opening. After running the
    /// *last* window, [`Self::thread_clocks`] matches the serial run's
    /// final per-thread cycle counters.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn run_sampled_window(
        &mut self,
        plan: &SamplingPlan,
        index: u32,
    ) -> (f64, Vec<PredictionStats>) {
        assert!(index < plan.total_windows(), "window index out of range");
        self.disable_timers();
        let n = self.threads.len();
        for _ in 0..index.min(plan.steady_windows) {
            self.replay_gap(plan);
            self.run_functional(plan.window);
        }
        if index < plan.steady_windows {
            let cycles = self.sampled_steady_window(plan);
            return (cycles, self.threads.iter().map(|t| t.stats).collect());
        }
        for w in 0..(index - plan.steady_windows) {
            self.replay_gap(plan);
            self.force_switch(w as usize % n);
            self.run_functional(plan.event_window);
        }
        let w = (index - plan.steady_windows) as usize % n;
        let cycles = self.sampled_event_window(plan, w);
        (cycles, self.threads.iter().map(|t| t.stats).collect())
    }

    /// Per-thread cycle counters (`clock as u64`, the value the serial
    /// sampled path stores into each thread's aggregate stats).
    pub fn thread_clocks(&self) -> Vec<u64> {
        self.threads.iter().map(|t| t.clock as u64).collect()
    }

    fn disable_timers(&mut self) {
        self.interval = u64::MAX;
        for t in &mut self.threads {
            t.next_switch = f64::INFINITY;
        }
    }

    /// One steady window: gap advance, per-thread stats reset, measured
    /// wall-clock delta over `plan.window` instructions. Shared by the
    /// serial and windowed sampled paths so the two cannot drift.
    fn sampled_steady_window(&mut self, plan: &SamplingPlan) -> f64 {
        self.advance_gap(plan);
        profile::time(Phase::Steady, || {
            for t in &mut self.threads {
                t.stats = PredictionStats::new();
            }
            let start_wall = self.wall_clock();
            let mut measured = 0u64;
            while measured < plan.window {
                measured += self.step_generic::<false>();
            }
            self.wall_clock() - start_wall
        })
    }

    /// One forced-switch event window, firing thread `idx`'s timer event.
    fn sampled_event_window(&mut self, plan: &SamplingPlan, idx: usize) -> f64 {
        self.advance_gap(plan);
        profile::time(Phase::Event, || {
            let start_wall = self.wall_clock();
            // Fire one thread's timer event exactly as the natural timer
            // would (flush/rekey + switch overhead on that thread), then
            // measure the storm's wall-clock cost.
            self.force_switch(idx);
            let mut measured = 0u64;
            while measured < plan.event_window {
                measured += self.step_generic::<false>();
            }
            self.wall_clock() - start_wall
        })
    }

    /// Fires thread `idx`'s timer context-switch event explicitly.
    fn force_switch(&mut self, idx: usize) {
        self.fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(idx as u8),
        });
        self.threads[idx].stats.context_switches += 1;
        self.threads[idx].clock += self.cfg.context_switch_overhead as f64;
    }

    /// Advances past one gap region per the plan's [`GapMode`]:
    /// generation-only skip plus timed rewarm, or functional execution of
    /// the folded gap+rewarm (clocks kept, stats skipped).
    fn advance_gap(&mut self, plan: &SamplingPlan) {
        profile::time(Phase::Gap, || match plan.gap_mode {
            GapMode::FastForward => {
                self.skip_all(plan.gap);
                self.run_timed_unmeasured(plan.rewarm);
            }
            GapMode::Functional => {
                self.run_functional(plan.gap + plan.rewarm);
            }
        })
    }

    /// [`Self::advance_gap`] for prefix replay: the fast-forward rewarm
    /// runs functionally (clock-identical, stats-free).
    fn replay_gap(&mut self, plan: &SamplingPlan) {
        profile::time(Phase::Gap, || match plan.gap_mode {
            GapMode::FastForward => {
                self.skip_all(plan.gap);
                self.run_functional(plan.rewarm);
            }
            GapMode::Functional => {
                self.run_functional(plan.gap + plan.rewarm);
            }
        })
    }

    /// Fast-forwards every thread's stream by `instructions / threads`
    /// generation-only (buffered events drained first), clocks untouched.
    fn skip_all(&mut self, instructions: u64) {
        if instructions == 0 {
            return;
        }
        let per_thread = instructions / self.threads.len() as u64;
        for t in &mut self.threads {
            let mut left = per_thread;
            while left > 0 {
                match t.buf.pop() {
                    Some(TraceEvent::Branch(rec)) => {
                        left = left.saturating_sub(rec.instructions());
                    }
                    Some(TraceEvent::PrivilegeSwitch(_)) => {}
                    None => break,
                }
            }
            if left > 0 {
                t.gen.skip_instructions(left);
            }
        }
    }

    fn wall_clock(&self) -> f64 {
        self.threads.iter().map(|t| t.clock).fold(0.0, f64::max)
    }

    /// Replaces each hardware thread's (still-unallocated) event buffer
    /// with one recycled from `pool`; see
    /// [`crate::SingleCoreSim::adopt_buffers`].
    pub fn adopt_buffers(&mut self, pool: &mut Vec<EventBuffer>) {
        for t in &mut self.threads {
            if let Some(mut buf) = pool.pop() {
                buf.recycle();
                t.buf = buf;
            }
        }
    }

    /// Moves this simulator's event buffers into `pool` for reuse; see
    /// [`crate::SingleCoreSim::release_buffers`].
    pub fn release_buffers(&mut self, pool: &mut Vec<EventBuffer>) {
        for t in &mut self.threads {
            pool.push(std::mem::take(&mut t.buf));
        }
    }

    /// The shared front-end (observability).
    pub fn frontend(&self) -> &SecureFrontend {
        &self.fe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(mech: Mechanism, seed: u64) -> SmtSim {
        SmtSim::new(
            CoreConfig::gem5(),
            PredictorKind::Gshare,
            mech,
            SwitchInterval::M8,
            &["zeusmp", "lbm"],
            seed,
        )
        .expect("sim")
    }

    #[test]
    fn needs_two_threads() {
        let r = SmtSim::new(
            CoreConfig::gem5(),
            PredictorKind::Gshare,
            Mechanism::Baseline,
            SwitchInterval::M8,
            &["gcc"],
            1,
        );
        assert!(r.is_err());
    }

    #[test]
    fn runs_and_measures() {
        let mut s = sim(Mechanism::Baseline, 11);
        let r = s.run(20_000, 200_000);
        assert!(r.cycles > 0.0);
        assert!(r.instructions >= 200_000);
        assert_eq!(r.per_thread.len(), 2);
        assert!(r.mpki() >= 0.0);
        // Both threads progressed.
        for t in &r.per_thread {
            assert!(t.instructions > 10_000, "thread starved: {t:?}");
        }
    }

    #[test]
    fn deterministic() {
        let a = sim(Mechanism::CompleteFlush, 5).run(10_000, 100_000);
        let b = sim(Mechanism::CompleteFlush, 5).run(10_000, 100_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.per_thread, b.per_thread);
    }

    #[test]
    fn batched_run_matches_scalar_reference() {
        for mech in [Mechanism::noisy_xor_bp(), Mechanism::CompleteFlush] {
            let a = sim(mech, 17).run(10_000, 120_000);
            let b = sim(mech, 17).run_scalar(10_000, 120_000);
            assert_eq!(a, b, "SMT results diverged under {mech:?}");
        }
    }

    #[test]
    fn warm_then_measure_equals_run() {
        let mut split = sim(Mechanism::noisy_xor_bp(), 13);
        split.warm(10_000);
        let a = split.run_measure(100_000);
        let b = sim(Mechanism::noisy_xor_bp(), 13).run(10_000, 100_000);
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let mut s = sim(Mechanism::CompleteFlush, 7);
        s.warm(15_000);
        let mut restored = s.try_clone().expect("static predictors clone");
        let a = s.run_measure(80_000);
        let b = restored.run_measure(80_000);
        assert_eq!(a, b);
    }

    #[test]
    fn retargeted_checkpoint_matches_fresh_warm() {
        let build = |interval| {
            SmtSim::new(
                CoreConfig::gem5(),
                PredictorKind::Gshare,
                Mechanism::CompleteFlush,
                interval,
                &["zeusmp", "lbm"],
                3,
            )
            .expect("sim")
        };
        let mut warm8 = build(SwitchInterval::M8);
        warm8.warm(12_000);
        assert_eq!(warm8.context_switches(), 0);
        assert!(warm8.retarget_interval(SwitchInterval::M4));
        let a = warm8.run_measure(60_000);
        let mut fresh4 = build(SwitchInterval::M4);
        fresh4.warm(12_000);
        let b = fresh4.run_measure(60_000);
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_run_is_deterministic_and_sees_storms() {
        let plan = crate::SamplingPlan::quick();
        let run = |mech| {
            let mut s = sim(mech, 51);
            s.warm(20_000);
            s.run_sampled(&plan)
        };
        let a = run(Mechanism::CompleteFlush);
        let b = run(Mechanism::CompleteFlush);
        assert_eq!(a, b);
        assert_eq!(a.threads, 2);
        assert_eq!(a.steady_cycles.len(), plan.steady_windows as usize);
        // Complete Flush: the forced-switch window costs more wall time
        // per instruction than steady state.
        let steady =
            a.steady_cycles.iter().sum::<f64>() / a.steady_cycles.len() as f64 / plan.window as f64;
        let event = a.event_cycles[0] / plan.event_window as f64;
        assert!(event > steady, "no storm: steady {steady} event {event}");
    }

    #[test]
    fn functional_stepping_matches_timed_stepping() {
        // Run the same region once through warm() (timed) and once
        // through run_functional(): thread clocks, interleaving and
        // shared predictor state must match bit-for-bit, proven by
        // identical measured windows afterwards.
        for mech in [Mechanism::CompleteFlush, Mechanism::noisy_xor_bp()] {
            let mut timed = sim(mech, 71);
            let mut functional = sim(mech, 71);
            for s in [&mut timed, &mut functional] {
                s.warm(10_000);
                s.disable_timers();
            }
            timed.warm(30_000);
            functional.run_functional(30_000);
            for (a, b) in timed.threads.iter().zip(&functional.threads) {
                assert_eq!(a.clock.to_bits(), b.clock.to_bits(), "clock skew");
            }
            let a = timed.run_measure(40_000);
            let b = functional.run_measure(40_000);
            assert_eq!(a, b, "functional region diverged under {mech:?}");
        }
    }

    #[test]
    fn functional_sampled_run_is_deterministic() {
        let plan = crate::SamplingPlan::quick_functional();
        let run = || {
            let mut s = sim(Mechanism::CompleteFlush, 81);
            s.warm(20_000);
            s.run_sampled(&plan)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.steady_cycles.iter().all(|c| *c > 0.0));
        assert!(a.event_cycles.iter().all(|c| *c > 0.0));
    }

    #[test]
    fn windowed_sampled_run_matches_serial() {
        for plan in [
            crate::SamplingPlan::quick(),
            crate::SamplingPlan::quick_functional(),
        ] {
            let mut warm = sim(Mechanism::CompleteFlush, 91);
            warm.warm(15_000);
            let mut serial = warm.try_clone().expect("clone");
            let m = serial.run_sampled(&plan);
            let mut agg = vec![PredictionStats::new(); 2];
            let mut last_clocks = Vec::new();
            for index in 0..plan.total_windows() {
                let mut solo = warm.try_clone().expect("clone");
                let (cycles, per_thread) = solo.run_sampled_window(&plan, index);
                let want = if index < plan.steady_windows {
                    for (a, t) in agg.iter_mut().zip(&per_thread) {
                        *a += *t;
                    }
                    m.steady_cycles[index as usize]
                } else {
                    m.event_cycles[(index - plan.steady_windows) as usize]
                };
                assert_eq!(cycles.to_bits(), want.to_bits(), "window {index}");
                last_clocks = solo.thread_clocks();
            }
            for ((a, want), clock) in agg.iter_mut().zip(&m.per_thread).zip(&last_clocks) {
                a.cycles = *clock;
                assert_eq!(a, want, "per-thread aggregate");
            }
        }
    }

    #[test]
    fn threads_progress_in_parallel() {
        let mut s = sim(Mechanism::Baseline, 9);
        let r = s.run(0, 100_000);
        let i0 = r.per_thread[0].instructions as f64;
        let i1 = r.per_thread[1].instructions as f64;
        let ratio = i0.max(i1) / i0.min(i1).max(1.0);
        assert!(ratio < 3.0, "thread imbalance {ratio}");
    }
}
