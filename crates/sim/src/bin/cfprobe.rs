//! Quick probe: CF / Noisy overhead on two SMT pairs (fig10 subset).
use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{smt_overhead, CoreConfig, SwitchInterval, WorkBudget};

fn main() {
    let budget = WorkBudget::smt_default();
    for (t, b) in [("zeusmp", "lbm"), ("gobmk", "h264ref")] {
        for kind in [PredictorKind::Gshare, PredictorKind::TageScL] {
            for (label, m, iv) in [
                ("CF", Mechanism::CompleteFlush, SwitchInterval::M8),
                ("Noisy", Mechanism::noisy_xor_bp(), SwitchInterval::M8),
                ("Noisy-off", Mechanism::noisy_xor_bp(), SwitchInterval::Off),
            ] {
                let o = smt_overhead(&[t, b], CoreConfig::gem5(), kind, m, iv, budget, 42).unwrap();
                println!("{t}+{b} {} {label}: {:+.2}%", kind.label(), o * 100.0);
            }
        }
    }
}
