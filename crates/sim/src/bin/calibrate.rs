//! Calibration report: per-benchmark baseline prediction accuracy, BTB hit
//! rate and per-predictor MPKI, compared against the anchors the paper
//! reports (Gshare 8.45 / Tournament 5.17 / LTAGE 4.10 / TAGE-SC-L 3.99
//! MPKI on SMT-2; gcc PHT 90.1%, gobmk BTB 85.2%, libquantum BTB 99.3%).
//!
//! Run with `cargo run -p sbp-sim --bin calibrate --release`.

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_sim::{run_single_case, run_smt, CoreConfig, SwitchInterval, WorkBudget};
use sbp_trace::{cases_single, cases_smt2, BenchmarkCase};

fn main() {
    let budget = WorkBudget {
        warmup: 50_000,
        measure: 400_000,
    };

    println!("== per-benchmark baseline (single-core, Gshare) ==");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>10}",
        "benchmark", "condAcc", "btbHit", "MPKI", "IPC"
    );
    let mut seen = std::collections::BTreeSet::new();
    for c in cases_single() {
        for name in [c.target, c.background] {
            if !seen.insert(name) {
                continue;
            }
            let case = BenchmarkCase {
                id: "cal",
                target: name,
                background: "namd",
            };
            let s = run_single_case(
                &case,
                CoreConfig::fpga(),
                PredictorKind::Gshare,
                Mechanism::Baseline,
                SwitchInterval::M8,
                budget,
                7,
            )
            .expect("run");
            println!(
                "{:<16} {:>7.1}% {:>7.1}% {:>8.2} {:>10.2}",
                name,
                100.0 * s.cond_accuracy(),
                100.0 * s.btb_hit_rate(),
                s.mpki(),
                s.ipc()
            );
        }
    }

    println!("\n== SMT-2 baseline MPKI per predictor (paper: 8.45 / 5.17 / 4.10 / 3.99) ==");
    for kind in PredictorKind::ALL {
        let mut total_mpki = 0.0;
        let n = 4; // subset of cases for speed
        for c in cases_smt2().iter().take(n) {
            let r = run_smt(
                &[c.target, c.background],
                CoreConfig::gem5(),
                kind,
                Mechanism::Baseline,
                SwitchInterval::M8,
                WorkBudget {
                    warmup: 100_000,
                    measure: 600_000,
                },
                11,
            )
            .expect("run");
            total_mpki += r.mpki();
        }
        println!(
            "{:<12} avg MPKI {:>6.2}",
            kind.label(),
            total_mpki / n as f64
        );
    }
}
