//! # sbp-sim
//!
//! Trace-driven, cycle-approximate simulation substrate: the Table 2 core
//! configurations, the penalty-based timing model, a single-threaded core
//! with timer-scheduled software contexts (the FPGA experiments) and an
//! SMT core (the gem5 experiments), plus the experiment runners used by
//! every benchmark harness.
//!
//! ```
//! use sbp_core::Mechanism;
//! use sbp_predictors::PredictorKind;
//! use sbp_sim::{CoreConfig, SingleCoreSim, SwitchInterval};
//!
//! # fn main() -> Result<(), sbp_types::SbpError> {
//! let mut sim = SingleCoreSim::new(
//!     CoreConfig::fpga(),
//!     PredictorKind::Gshare,
//!     Mechanism::noisy_xor_bp(),
//!     SwitchInterval::M8,
//!     &["gcc", "calculix"],
//!     42,
//! )?;
//! let stats = sim.run_target(1_000, 10_000);
//! assert!(stats.cond_accuracy() > 0.5);
//! # Ok(())
//! # }
//! ```
//!
//! ## Units
//!
//! Unless a doc comment says otherwise: **time** is in core clock cycles
//! (`f64` accumulators, integer penalties from [`CoreConfig`]), **work**
//! is in dynamic branches (single-core budgets) or instructions (SMT
//! budgets), and **flushes** are whole-table — Complete Flush clears
//! every predictor structure, Precise Flush only the departing thread's
//! entries.

#![deny(missing_docs)]

pub mod config;
pub mod core;
pub mod experiment;
pub mod profile;
pub mod sampling;
pub mod smt;
pub mod timing;

pub use config::{CoreConfig, SwitchInterval};
pub use core::SingleCoreSim;
pub use experiment::{run_single_case, run_smt, scale, single_overhead, smt_overhead, WorkBudget};
pub use sampling::{estimate_cycles, GapMode, SampledEstimate, SampledMeasurement, SamplingPlan};
pub use smt::{SmtResult, SmtSim};
pub use timing::{execute_branch, execute_branch_scalar, train_branch, train_branch_clocked};
