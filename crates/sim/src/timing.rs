//! The per-branch timing model.
//!
//! Converts one dynamic branch into cycles, consulting and training the
//! [`SecureFrontend`]. The model follows the paper's FPGA BOOM behaviour:
//!
//! * a conditional branch predicted taken needs a BTB target; on a BTB miss
//!   the front-end **reverts to fall-through** (paper §6.2.1), which is
//!   precisely what makes flushing occasionally *help* (case 2);
//! * direct jumps/calls pay a short decoder re-steer when the BTB cannot
//!   supply the target;
//! * indirect branches pay the full misprediction penalty when the BTB
//!   misses or stores a wrong (e.g. stale-key garbage) target;
//! * returns are predicted by the RAS.

use sbp_core::SecureFrontend;
use sbp_types::{BranchInfo, BranchKind, BranchRecord, Pc, PredictionStats, ThreadId};

use crate::config::CoreConfig;

/// The front-end operations the timing model consumes.
///
/// Both entry points — the batched/cached [`execute_branch`] and the
/// reference [`execute_branch_scalar`] — instantiate the *same* generic
/// timing body over this trait, so the cycle arithmetic cannot drift
/// between the two paths.
trait FrontendOps {
    fn train_direction(&mut self, info: BranchInfo, taken: bool) -> bool;
    fn predict_target(&mut self, info: BranchInfo) -> Option<Pc>;
    fn update_target(&mut self, info: BranchInfo, target: Pc);
    fn ras_push(&mut self, thread: ThreadId, addr: Pc);
    fn ras_pop(&mut self, thread: ThreadId) -> Option<Pc>;
}

/// Fast path: cached per-thread key contexts + enum-dispatched predictor
/// with fused direction predict+update.
impl FrontendOps for SecureFrontend {
    #[inline]
    fn train_direction(&mut self, info: BranchInfo, taken: bool) -> bool {
        SecureFrontend::train_direction(self, info, taken)
    }
    #[inline]
    fn predict_target(&mut self, info: BranchInfo) -> Option<Pc> {
        SecureFrontend::predict_target(self, info)
    }
    #[inline]
    fn update_target(&mut self, info: BranchInfo, target: Pc) {
        SecureFrontend::update_target(self, info, target)
    }
    #[inline]
    fn ras_push(&mut self, thread: ThreadId, addr: Pc) {
        SecureFrontend::ras_push(self, thread, addr)
    }
    #[inline]
    fn ras_pop(&mut self, thread: ThreadId) -> Option<Pc> {
        SecureFrontend::ras_pop(self, thread)
    }
}

/// Reference path: re-derives key contexts per access and dispatches the
/// direction predictor through `&mut dyn`, exactly like the pre-batching
/// scalar loop did.
struct ScalarFrontend<'a>(&'a mut SecureFrontend);

impl FrontendOps for ScalarFrontend<'_> {
    fn train_direction(&mut self, info: BranchInfo, taken: bool) -> bool {
        let predicted = self.0.predict_direction_uncached(info);
        self.0.update_direction_uncached(info, taken, predicted);
        predicted
    }
    fn predict_target(&mut self, info: BranchInfo) -> Option<Pc> {
        self.0.predict_target_uncached(info)
    }
    fn update_target(&mut self, info: BranchInfo, target: Pc) {
        self.0.update_target_uncached(info, target)
    }
    fn ras_push(&mut self, thread: ThreadId, addr: Pc) {
        self.0.ras_push(thread, addr)
    }
    fn ras_pop(&mut self, thread: ThreadId) -> Option<Pc> {
        self.0.ras_pop(thread)
    }
}

/// Executes one branch on the front-end and returns the cycles consumed
/// (base slot time plus penalties), updating `stats`.
///
/// Cycle unit: one core clock; the base cost is `(gap + 1) / base_ipc`
/// cycles for the branch plus its gap of plain instructions.
#[inline]
pub fn execute_branch(
    fe: &mut SecureFrontend,
    cfg: &CoreConfig,
    thread: ThreadId,
    rec: &BranchRecord,
    stats: &mut PredictionStats,
) -> f64 {
    branch_impl::<_, true, true>(fe, cfg, thread, rec, stats)
}

/// Functional (timing-free) stepping: trains the front-end on one branch
/// with state mutations bit-identical to [`execute_branch`] — predictor,
/// BTB (including LRU touches on exactly the lookups the timed path
/// issues), RAS — but performs no cycle arithmetic and no stats
/// bookkeeping. This is the single-core gap executor of the two-speed
/// hybrid engine.
#[inline]
pub fn train_branch(
    fe: &mut SecureFrontend,
    cfg: &CoreConfig,
    thread: ThreadId,
    rec: &BranchRecord,
) {
    // STATS=false never writes the scratch; it exists only to keep the
    // shared body monomorphic and is optimized away.
    let mut scratch = PredictionStats::new();
    branch_impl::<_, false, false>(fe, cfg, thread, rec, &mut scratch);
}

/// Functional stepping that keeps the cycle computation (no stats):
/// returns the cycles [`execute_branch`] would have charged. The SMT
/// scheduler is clock-driven (min-clock thread selection), so its
/// functional gap path must advance per-thread clocks bit-identically
/// even while skipping stats.
#[inline]
pub fn train_branch_clocked(
    fe: &mut SecureFrontend,
    cfg: &CoreConfig,
    thread: ThreadId,
    rec: &BranchRecord,
) -> f64 {
    let mut scratch = PredictionStats::new();
    branch_impl::<_, true, false>(fe, cfg, thread, rec, &mut scratch)
}

/// [`execute_branch`] through the uncached reference front-end path
/// (per-access key-context derivation + `dyn` predictor dispatch).
///
/// This is the pre-batching scalar loop, kept first-class so equivalence
/// tests and the branches-per-second benchmark can compare against it.
/// Timing results are bit-identical to [`execute_branch`]; only the
/// bookkeeping overhead differs.
pub fn execute_branch_scalar(
    fe: &mut SecureFrontend,
    cfg: &CoreConfig,
    thread: ThreadId,
    rec: &BranchRecord,
    stats: &mut PredictionStats,
) -> f64 {
    branch_impl::<_, true, true>(&mut ScalarFrontend(fe), cfg, thread, rec, stats)
}

/// The shared three-mode branch body.
///
/// `TIMED` gates all cycle arithmetic and `STATS` gates all stats
/// writes; both are compile-time constants so each mode monomorphizes to
/// a loop with the dead halves removed. State mutations (direction
/// train, BTB lookup/update, RAS) are identical across modes — the BTB
/// lookup is issued exactly when the timed path issues it (conditionals:
/// only when predicted taken), because `Btb::lookup` touches LRU state.
///
/// The direction predictor trains through the fused
/// `FrontendOps::train_direction` *before* the BTB lookup. That reorder
/// (the original split path interleaved the lookup between predict and
/// update) is bit-identical: the direction engine, BTB, RAS and key
/// contexts are disjoint state and no core event fires inside a branch,
/// so the prediction and every penalty term are unchanged.
#[inline]
fn branch_impl<F: FrontendOps, const TIMED: bool, const STATS: bool>(
    fe: &mut F,
    cfg: &CoreConfig,
    thread: ThreadId,
    rec: &BranchRecord,
    stats: &mut PredictionStats,
) -> f64 {
    let mut cycles = if TIMED {
        (rec.gap as f64 + 1.0) / cfg.base_ipc
    } else {
        0.0
    };
    if STATS {
        stats.instructions += rec.instructions();
    }
    let info = BranchInfo::new(thread, rec.pc, rec.kind);

    match rec.kind {
        BranchKind::Conditional => {
            let pht_pred = fe.train_direction(info, rec.taken);
            if STATS {
                stats.cond_branches += 1;
            }
            let mut effective = pht_pred;
            let mut predicted_target = None;
            if pht_pred {
                if STATS {
                    stats.btb_lookups += 1;
                }
                match fe.predict_target(info) {
                    Some(t) => predicted_target = Some(t),
                    None => {
                        if STATS {
                            stats.btb_misses += 1;
                        }
                        // No target available: the fetch unit falls through.
                        effective = false;
                    }
                }
            }
            if effective != rec.taken {
                if STATS {
                    stats.cond_mispredicts += 1;
                }
                if TIMED {
                    cycles += cfg.mispredict_penalty as f64;
                }
            } else if effective && predicted_target != Some(rec.target) {
                // Right direction, wrong target word (stale or encoded
                // garbage): the decoder recomputes the direct target.
                if STATS {
                    stats.btb_wrong_target += 1;
                }
                if TIMED {
                    cycles += cfg.decode_resteer_penalty as f64;
                }
            }
            // The BTB is updated if and only if the branch is taken (§2.1).
            if rec.taken {
                fe.update_target(info, rec.target);
            }
        }
        BranchKind::DirectJump | BranchKind::Call => {
            if STATS {
                stats.btb_lookups += 1;
            }
            match fe.predict_target(info) {
                Some(t) if t == rec.target => {}
                Some(_) => {
                    if STATS {
                        stats.btb_wrong_target += 1;
                    }
                    if TIMED {
                        cycles += cfg.decode_resteer_penalty as f64;
                    }
                }
                None => {
                    if STATS {
                        stats.btb_misses += 1;
                    }
                    if TIMED {
                        cycles += cfg.decode_resteer_penalty as f64;
                    }
                }
            }
            fe.update_target(info, rec.target);
            if rec.kind.pushes_ras() {
                fe.ras_push(thread, rec.pc.fall_through());
            }
        }
        BranchKind::IndirectJump | BranchKind::IndirectCall => {
            if STATS {
                stats.indirect_branches += 1;
                stats.btb_lookups += 1;
            }
            match fe.predict_target(info) {
                Some(t) if t == rec.target => {}
                Some(_) => {
                    if STATS {
                        stats.btb_wrong_target += 1;
                        stats.indirect_mispredicts += 1;
                    }
                    if TIMED {
                        cycles += cfg.mispredict_penalty as f64;
                    }
                }
                None => {
                    if STATS {
                        stats.btb_misses += 1;
                        stats.indirect_mispredicts += 1;
                    }
                    if TIMED {
                        cycles += cfg.mispredict_penalty as f64;
                    }
                }
            }
            fe.update_target(info, rec.target);
            if rec.kind.pushes_ras() {
                fe.ras_push(thread, rec.pc.fall_through());
            }
        }
        BranchKind::Return => {
            if STATS {
                stats.returns += 1;
            }
            match fe.ras_pop(thread) {
                Some(addr) if addr == rec.target => {}
                _ => {
                    if STATS {
                        stats.ras_mispredicts += 1;
                    }
                    if TIMED {
                        cycles += cfg.mispredict_penalty as f64;
                    }
                }
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_core::{FrontendConfig, Mechanism};
    use sbp_predictors::PredictorKind;
    use sbp_types::Pc;

    fn frontend(mech: Mechanism) -> SecureFrontend {
        SecureFrontend::new(FrontendConfig::paper_fpga(PredictorKind::Gshare, mech))
    }

    fn t0() -> ThreadId {
        ThreadId::new(0)
    }

    #[test]
    fn base_cost_is_ipc_limited() {
        let mut fe = frontend(Mechanism::Baseline);
        let cfg = CoreConfig::fpga();
        let mut stats = PredictionStats::new();
        // A not-taken branch predicted not-taken costs only slot time.
        let rec = BranchRecord::not_taken(Pc::new(0x400), 9);
        let cycles = execute_branch(&mut fe, &cfg, t0(), &rec, &mut stats);
        assert!((cycles - 10.0 / 2.0).abs() < 1e-9, "cycles {cycles}");
        assert_eq!(stats.cond_mispredicts, 0);
        assert_eq!(stats.instructions, 10);
    }

    #[test]
    fn cold_taken_branch_pays_full_penalty() {
        let mut fe = frontend(Mechanism::Baseline);
        let cfg = CoreConfig::fpga();
        let mut stats = PredictionStats::new();
        let rec = BranchRecord::taken(Pc::new(0x400), BranchKind::Conditional, Pc::new(0x800), 0);
        let cycles = execute_branch(&mut fe, &cfg, t0(), &rec, &mut stats);
        // Cold PHT predicts not-taken; actual taken → misprediction.
        assert_eq!(stats.cond_mispredicts, 1);
        assert!(cycles >= cfg.mispredict_penalty as f64);
    }

    #[test]
    fn warm_conditional_with_btb_is_free_of_penalty() {
        let mut fe = frontend(Mechanism::Baseline);
        let cfg = CoreConfig::fpga();
        let mut stats = PredictionStats::new();
        let rec = BranchRecord::taken(Pc::new(0x400), BranchKind::Conditional, Pc::new(0x800), 0);
        for _ in 0..30 {
            execute_branch(&mut fe, &cfg, t0(), &rec, &mut stats);
        }
        let mut fresh = PredictionStats::new();
        let cycles = execute_branch(&mut fe, &cfg, t0(), &rec, &mut fresh);
        assert_eq!(fresh.cond_mispredicts, 0, "trained branch mispredicted");
        assert!(
            (cycles - 0.5).abs() < 1e-9,
            "penalty-free cost, got {cycles}"
        );
    }

    #[test]
    fn not_taken_branch_saved_by_btb_miss() {
        // The case-2 effect: direction mistrained toward taken, BTB cold →
        // fall-through turns out correct, no penalty. Train past gshare's
        // 13-bit GHR saturation so the final prediction uses a trained
        // entry.
        let mut fe = frontend(Mechanism::Baseline);
        let cfg = CoreConfig::fpga();
        let mut stats = PredictionStats::new();
        let pc = Pc::new(0x500);
        for _ in 0..20 {
            let info = BranchInfo::new(t0(), pc, BranchKind::Conditional);
            let p = fe.predict_direction(info);
            fe.update_direction(info, true, p); // direction says taken
        }
        // Now execute an actually-not-taken instance: PHT says taken, BTB
        // misses, fall-through is correct → no mispredict penalty.
        let rec = BranchRecord::not_taken(pc, 0);
        let cycles = execute_branch(&mut fe, &cfg, t0(), &rec, &mut stats);
        assert_eq!(stats.btb_misses, 1, "predicted-taken must consult the BTB");
        assert_eq!(stats.cond_mispredicts, 0, "fall-through should save this");
        assert!((cycles - 0.5).abs() < 1e-9, "cycles {cycles}");
    }

    #[test]
    fn direct_call_uses_decode_resteer_and_ras() {
        let mut fe = frontend(Mechanism::Baseline);
        let cfg = CoreConfig::fpga();
        let mut stats = PredictionStats::new();
        let call = BranchRecord::taken(Pc::new(0x600), BranchKind::Call, Pc::new(0x2000), 0);
        let c1 = execute_branch(&mut fe, &cfg, t0(), &call, &mut stats);
        assert_eq!(stats.btb_misses, 1);
        assert!((c1 - (0.5 + cfg.decode_resteer_penalty as f64)).abs() < 1e-9);
        // Second time: BTB hit, no penalty.
        let c2 = execute_branch(&mut fe, &cfg, t0(), &call, &mut stats);
        assert!((c2 - 0.5).abs() < 1e-9);
        // Matching return predicted by the RAS.
        let ret = BranchRecord::taken(Pc::new(0x2100), BranchKind::Return, Pc::new(0x604), 0);
        let c3 = execute_branch(&mut fe, &cfg, t0(), &ret, &mut stats);
        // Two calls pushed two return addresses; the top matches.
        assert_eq!(stats.ras_mispredicts, 0);
        assert!((c3 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn indirect_miss_pays_full_penalty() {
        let mut fe = frontend(Mechanism::Baseline);
        let cfg = CoreConfig::fpga();
        let mut stats = PredictionStats::new();
        let ind = BranchRecord::taken(Pc::new(0x700), BranchKind::IndirectJump, Pc::new(0x3000), 0);
        let c1 = execute_branch(&mut fe, &cfg, t0(), &ind, &mut stats);
        assert_eq!(stats.indirect_mispredicts, 1);
        assert!((c1 - (0.5 + cfg.mispredict_penalty as f64)).abs() < 1e-9);
        // Warm hit.
        let c2 = execute_branch(&mut fe, &cfg, t0(), &ind, &mut stats);
        assert_eq!(stats.indirect_mispredicts, 1);
        assert!((c2 - 0.5).abs() < 1e-9);
        // Target change: wrong-target misprediction.
        let ind2 =
            BranchRecord::taken(Pc::new(0x700), BranchKind::IndirectJump, Pc::new(0x4000), 0);
        let c3 = execute_branch(&mut fe, &cfg, t0(), &ind2, &mut stats);
        assert_eq!(stats.indirect_mispredicts, 2);
        assert_eq!(stats.btb_wrong_target, 1);
        assert!(c3 > cfg.mispredict_penalty as f64);
    }

    #[test]
    fn scalar_and_cached_paths_are_bit_identical() {
        use sbp_trace::{TraceEvent, TraceGenerator, WorkloadProfile};
        let cfg = CoreConfig::fpga();
        for mech in [
            Mechanism::Baseline,
            Mechanism::noisy_xor_bp(),
            Mechanism::CompleteFlush,
        ] {
            let mut fast = frontend(mech);
            let mut slow = frontend(mech);
            let mut fast_stats = PredictionStats::new();
            let mut slow_stats = PredictionStats::new();
            let profile = WorkloadProfile::by_name("gcc").unwrap();
            let mut generator = TraceGenerator::new(&profile, 0x1000_0000, 0xfeed);
            let mut checked = 0;
            while checked < 20_000 {
                let TraceEvent::Branch(rec) = generator.next_event() else {
                    continue;
                };
                let a = execute_branch(&mut fast, &cfg, t0(), &rec, &mut fast_stats);
                let b = execute_branch_scalar(&mut slow, &cfg, t0(), &rec, &mut slow_stats);
                assert_eq!(a.to_bits(), b.to_bits(), "cycle divergence at {checked}");
                checked += 1;
            }
            assert_eq!(fast_stats, slow_stats, "stats divergence under {mech:?}");
        }
    }

    #[test]
    fn functional_stepping_leaves_state_identical_to_timed() {
        use sbp_trace::{TraceEvent, TraceGenerator, WorkloadProfile};
        let cfg = CoreConfig::fpga();
        for mech in [
            Mechanism::Baseline,
            Mechanism::noisy_xor_bp(),
            Mechanism::CompleteFlush,
        ] {
            let mut timed = frontend(mech);
            let mut functional = frontend(mech);
            let mut clocked = frontend(mech);
            let profile = WorkloadProfile::by_name("gcc").unwrap();
            let mut generator = TraceGenerator::new(&profile, 0x1000_0000, 0xbeef);
            let mut sink = PredictionStats::new();
            let mut trained = 0;
            while trained < 10_000 {
                let TraceEvent::Branch(rec) = generator.next_event() else {
                    continue;
                };
                let a = execute_branch(&mut timed, &cfg, t0(), &rec, &mut sink);
                train_branch(&mut functional, &cfg, t0(), &rec);
                let c = train_branch_clocked(&mut clocked, &cfg, t0(), &rec);
                assert_eq!(a.to_bits(), c.to_bits(), "clocked cycles at {trained}");
                trained += 1;
            }
            // Probe: after functional training the three front-ends must be
            // observationally identical — same cycles bit-for-bit and same
            // stats over a shared timed tail.
            let mut s1 = PredictionStats::new();
            let mut s2 = PredictionStats::new();
            let mut s3 = PredictionStats::new();
            let mut probed = 0;
            while probed < 5_000 {
                let TraceEvent::Branch(rec) = generator.next_event() else {
                    continue;
                };
                let a = execute_branch(&mut timed, &cfg, t0(), &rec, &mut s1);
                let b = execute_branch(&mut functional, &cfg, t0(), &rec, &mut s2);
                let c = execute_branch(&mut clocked, &cfg, t0(), &rec, &mut s3);
                assert_eq!(a.to_bits(), b.to_bits(), "probe divergence at {probed}");
                assert_eq!(a.to_bits(), c.to_bits(), "probe divergence at {probed}");
                probed += 1;
            }
            assert_eq!(s1, s2, "stats divergence under {mech:?}");
            assert_eq!(s1, s3, "stats divergence under {mech:?}");
        }
    }

    #[test]
    fn empty_ras_mispredicts_return() {
        let mut fe = frontend(Mechanism::Baseline);
        let cfg = CoreConfig::fpga();
        let mut stats = PredictionStats::new();
        let ret = BranchRecord::taken(Pc::new(0x800), BranchKind::Return, Pc::new(0x604), 0);
        execute_branch(&mut fe, &cfg, t0(), &ret, &mut stats);
        assert_eq!(stats.ras_mispredicts, 1);
    }
}
