//! Simulated core configurations (the paper's Table 2).

use serde::{Deserialize, Serialize};

use sbp_predictors::BtbConfig;

/// Timing and structure parameters of a simulated core.
///
/// The cycle model is penalty-based: `cycles = instructions / base_ipc +
/// Σ penalties`. Penalties are derived from the pipeline depths in Table 2
/// (10 stages on the FPGA BOOM, 19 on the gem5 Sunny-Cove-like core).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Configuration name ("fpga" / "gem5").
    pub name: &'static str,
    /// Issue-limited IPC with perfect prediction.
    pub base_ipc: f64,
    /// Full pipeline refill on a resolved misprediction (≈ pipeline depth).
    pub mispredict_penalty: u32,
    /// Front-end re-steer when a direct branch's target comes from the
    /// decoder instead of the BTB.
    pub decode_resteer_penalty: u32,
    /// Trap entry/exit overhead charged per privilege switch.
    pub trap_overhead: u32,
    /// Direct cost of a context switch (register save/restore etc.).
    pub context_switch_overhead: u32,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// RAS depth.
    pub ras_depth: usize,
}

impl CoreConfig {
    /// The FPGA BOOM RISC-V prototype column of Table 2.
    pub fn fpga() -> Self {
        CoreConfig {
            name: "fpga",
            base_ipc: 2.0,
            mispredict_penalty: 10,
            decode_resteer_penalty: 2,
            trap_overhead: 40,
            context_switch_overhead: 600,
            btb: BtbConfig::paper_fpga(),
            ras_depth: 16,
        }
    }

    /// The gem5 Sunny-Cove-like SMT column of Table 2.
    pub fn gem5() -> Self {
        CoreConfig {
            name: "gem5",
            base_ipc: 3.0,
            mispredict_penalty: 19,
            decode_resteer_penalty: 3,
            trap_overhead: 60,
            context_switch_overhead: 900,
            btb: BtbConfig::paper_gem5(),
            ras_depth: 32,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::fpga()
    }
}

/// Context-switch intervals studied by the paper, in cycles.
///
/// Standard Linux switches every 4 ms; at 2 GHz that is 8 M cycles
/// (`flush-8M` / `XOR-BP-8M` in the figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchInterval {
    /// Never (ablation: isolates steady-state effects from switch events).
    Off,
    /// Every 4 million cycles.
    M4,
    /// Every 8 million cycles (Linux default at 2 GHz).
    M8,
    /// Every 12 million cycles.
    M12,
}

impl SwitchInterval {
    /// All three studied intervals.
    pub const ALL: [SwitchInterval; 3] =
        [SwitchInterval::M4, SwitchInterval::M8, SwitchInterval::M12];

    /// Interval length in cycles.
    pub const fn cycles(self) -> u64 {
        match self {
            SwitchInterval::Off => u64::MAX,
            SwitchInterval::M4 => 4_000_000,
            SwitchInterval::M8 => 8_000_000,
            SwitchInterval::M12 => 12_000_000,
        }
    }

    /// Figure label suffix ("4M" etc.).
    pub const fn label(self) -> &'static str {
        match self {
            SwitchInterval::Off => "off",
            SwitchInterval::M4 => "4M",
            SwitchInterval::M8 => "8M",
            SwitchInterval::M12 => "12M",
        }
    }
}

impl std::fmt::Display for SwitchInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        let fpga = CoreConfig::fpga();
        assert_eq!(fpga.mispredict_penalty, 10, "10-stage BOOM pipeline");
        assert_eq!(fpga.btb.sets, 256);
        assert_eq!(fpga.btb.ways, 2);
        let gem5 = CoreConfig::gem5();
        assert_eq!(gem5.mispredict_penalty, 19, "19-stage Sunny Cove pipeline");
        assert_eq!(gem5.btb.sets, 1024);
        assert_eq!(gem5.btb.ways, 4);
        assert!(gem5.base_ipc > fpga.base_ipc);
    }

    #[test]
    fn interval_cycles() {
        assert_eq!(SwitchInterval::M4.cycles(), 4_000_000);
        assert_eq!(SwitchInterval::M8.cycles(), 8_000_000);
        assert_eq!(SwitchInterval::M12.cycles(), 12_000_000);
        assert_eq!(SwitchInterval::M8.to_string(), "8M");
    }
}
