//! The secure branch-prediction front-end.
//!
//! [`SecureFrontend`] bundles a direction predictor, a BTB and a RAS behind
//! one interface and applies the configured [`Mechanism`]:
//!
//! * it derives the correct [`KeyCtx`] for every access (content keys for
//!   XOR-BP, index keys for Noisy-XOR-BP, owner tracking for Precise
//!   Flush);
//! * it reacts to [`CoreEvent`]s — flushing for the flush mechanisms,
//!   re-keying for the XOR family.
//!
//! The simulator (`sbp-sim`) drives one `SecureFrontend` per core; the
//! attack framework (`sbp-attack`) drives one directly, playing attacker
//! and victim.

use serde::{Deserialize, Serialize};

use sbp_predictors::{Btb, BtbConfig, DirectionEngine, PredictorKind, Ras};
use sbp_types::{BranchInfo, CoreEvent, DirectionPredictor, KeyCtx, Pc, TargetPredictor, ThreadId};

use crate::keys::KeyManager;
use crate::mechanism::Mechanism;

/// Counters of isolation actions taken by the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IsolationStats {
    /// Complete flushes performed.
    pub complete_flushes: u64,
    /// Precise (per-thread) flushes performed.
    pub precise_flushes: u64,
    /// Key refreshes performed.
    pub rekeys: u64,
}

/// Configuration for [`SecureFrontend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// Direction predictor family.
    pub predictor: PredictorKind,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// RAS depth per thread.
    pub ras_depth: usize,
    /// Hardware thread contexts.
    pub threads: usize,
    /// Isolation mechanism.
    pub mechanism: Mechanism,
    /// Seed for the hardware key RNG.
    pub key_seed: u64,
}

impl FrontendConfig {
    /// The paper's FPGA BOOM single-thread configuration.
    pub fn paper_fpga(predictor: PredictorKind, mechanism: Mechanism) -> Self {
        FrontendConfig {
            predictor,
            btb: BtbConfig::paper_fpga(),
            ras_depth: 16,
            threads: 1,
            mechanism,
            key_seed: 0x5eed_5eed,
        }
    }

    /// The paper's gem5 Sunny-Cove-like SMT configuration.
    pub fn paper_gem5(predictor: PredictorKind, mechanism: Mechanism, threads: usize) -> Self {
        FrontendConfig {
            predictor,
            btb: BtbConfig::paper_gem5(),
            ras_depth: 32,
            threads,
            mechanism,
            key_seed: 0x5eed_5eed,
        }
    }
}

/// A branch-prediction front-end with a pluggable isolation mechanism.
///
/// The per-access [`KeyCtx`]s are cached per hardware thread and refreshed
/// only when the underlying keys change (a rekey), so the hot
/// predict/update path performs no key derivation. The uncached derivation
/// is kept available as [`SecureFrontend::derive_pht_ctx`] /
/// [`SecureFrontend::derive_btb_ctx`] — it is the reference the cache is
/// validated against and the path the scalar (pre-batching) simulator loop
/// uses.
pub struct SecureFrontend {
    dir: DirectionEngine,
    btb: Btb,
    ras: Ras,
    mechanism: Mechanism,
    keys: KeyManager,
    stats: IsolationStats,
    /// Cached per-thread PHT access contexts (invalidated by rekeys).
    pht_ctxs: Vec<KeyCtx>,
    /// Cached per-thread BTB access contexts (invalidated by rekeys).
    btb_ctxs: Vec<KeyCtx>,
}

impl std::fmt::Debug for SecureFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureFrontend")
            .field("predictor", &self.dir.name())
            .field("mechanism", &self.mechanism)
            .field("stats", &self.stats)
            .finish()
    }
}

impl SecureFrontend {
    /// Builds a front-end from a configuration.
    pub fn new(cfg: FrontendConfig) -> Self {
        let owner_tags = cfg.mechanism.needs_owner_tags();
        let dir = if owner_tags {
            DirectionEngine::build_with_owner_tags(cfg.predictor, cfg.threads)
        } else {
            DirectionEngine::build(cfg.predictor, cfg.threads)
        };
        let btb = if owner_tags {
            Btb::new(cfg.btb).with_owner_tags()
        } else {
            Btb::new(cfg.btb)
        };
        let mut fe = SecureFrontend {
            dir,
            btb,
            ras: Ras::new(cfg.ras_depth, cfg.threads),
            mechanism: cfg.mechanism,
            keys: KeyManager::new(cfg.threads, cfg.key_seed),
            stats: IsolationStats::default(),
            pht_ctxs: Vec::new(),
            btb_ctxs: Vec::new(),
        };
        fe.rebuild_ctx_cache(cfg.threads);
        fe
    }

    /// Builds a front-end around a caller-provided direction predictor
    /// (ablation / custom-predictor entry point).
    ///
    /// The caller is responsible for enabling owner tags on the predictor
    /// when `mechanism` is [`Mechanism::PreciseFlush`].
    pub fn with_direction_predictor(
        dir: Box<dyn DirectionPredictor + Send>,
        cfg: FrontendConfig,
    ) -> Self {
        let btb = if cfg.mechanism.needs_owner_tags() {
            Btb::new(cfg.btb).with_owner_tags()
        } else {
            Btb::new(cfg.btb)
        };
        let mut fe = SecureFrontend {
            dir: DirectionEngine::custom(dir),
            btb,
            ras: Ras::new(cfg.ras_depth, cfg.threads),
            mechanism: cfg.mechanism,
            keys: KeyManager::new(cfg.threads, cfg.key_seed),
            stats: IsolationStats::default(),
            pht_ctxs: Vec::new(),
            btb_ctxs: Vec::new(),
        };
        fe.rebuild_ctx_cache(cfg.threads);
        fe
    }

    /// Deep-copies the front-end — predictor tables, BTB, RAS, key
    /// manager, and the cached access contexts — or `None` when the
    /// direction predictor is a custom trait object (see
    /// [`DirectionEngine::try_clone`]).
    ///
    /// A clone behaves bit-identically to the original from the snapshot
    /// point on; this is what makes warm-state checkpoints sound.
    pub fn try_clone(&self) -> Option<Self> {
        Some(SecureFrontend {
            dir: self.dir.try_clone()?,
            btb: self.btb.clone(),
            ras: self.ras.clone(),
            mechanism: self.mechanism,
            keys: self.keys.clone(),
            stats: self.stats,
            pht_ctxs: self.pht_ctxs.clone(),
            btb_ctxs: self.btb_ctxs.clone(),
        })
    }

    /// The configured mechanism.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// Isolation action counters.
    pub fn stats(&self) -> IsolationStats {
        self.stats
    }

    /// Derives the [`KeyCtx`] used for direction-predictor (PHT) accesses
    /// by `thread` from the current keys and mechanism.
    ///
    /// This is the uncached reference derivation (the pre-caching access
    /// path): the hot methods read the same value from the per-thread
    /// cache, which is refreshed whenever the keys change.
    pub fn derive_pht_ctx(&self, thread: ThreadId) -> KeyCtx {
        let mut ctx = KeyCtx::disabled(thread);
        // Precise Flush tags PHT entries to target the flush, but does NOT
        // read-filter them: per-entry thread-ID matching on 2-bit counters
        // is the cost the paper's footnote 2 deems impractical.
        ctx.owner_tracking = self.mechanism.needs_owner_tags();
        if let Mechanism::Xor(x) = self.mechanism {
            if x.protect_pht {
                ctx.keys = self.keys.keys(thread);
                ctx.content_enabled = true;
                ctx.index_enabled = x.index_encoding;
                ctx.enhanced = x.enhanced_pht;
                ctx.codec = x.codec;
            }
        }
        ctx
    }

    /// Derives the [`KeyCtx`] used for BTB accesses by `thread` (uncached
    /// reference derivation; see [`SecureFrontend::derive_pht_ctx`]).
    pub fn derive_btb_ctx(&self, thread: ThreadId) -> KeyCtx {
        let mut ctx = KeyCtx::disabled(thread);
        ctx.owner_tracking = self.mechanism.needs_owner_tags();
        // In a tagged structure the thread ID acts as a tag extension:
        // another thread's entries cannot hit (Table 1, footnote 1).
        ctx.owner_read_filter = ctx.owner_tracking;
        if let Mechanism::Xor(x) = self.mechanism {
            if x.protect_btb {
                ctx.keys = self.keys.keys(thread);
                ctx.content_enabled = true;
                ctx.index_enabled = x.index_encoding;
                ctx.enhanced = true;
                ctx.codec = x.codec;
            }
        }
        ctx
    }

    /// The [`KeyCtx`] used for direction-predictor (PHT) accesses by
    /// `thread` (served from the per-thread cache).
    pub fn pht_ctx(&self, thread: ThreadId) -> KeyCtx {
        self.pht_ctxs[thread.index()]
    }

    /// The [`KeyCtx`] used for BTB accesses by `thread` (served from the
    /// per-thread cache).
    pub fn btb_ctx(&self, thread: ThreadId) -> KeyCtx {
        self.btb_ctxs[thread.index()]
    }

    /// Rebuilds the whole ctx cache (construction time).
    fn rebuild_ctx_cache(&mut self, threads: usize) {
        self.pht_ctxs = (0..threads)
            .map(|t| self.derive_pht_ctx(ThreadId::new(t as u8)))
            .collect();
        self.btb_ctxs = (0..threads)
            .map(|t| self.derive_btb_ctx(ThreadId::new(t as u8)))
            .collect();
    }

    /// Refreshes the cached ctxs of one thread after its keys changed.
    fn refresh_ctxs(&mut self, thread: ThreadId) {
        self.pht_ctxs[thread.index()] = self.derive_pht_ctx(thread);
        self.btb_ctxs[thread.index()] = self.derive_btb_ctx(thread);
    }

    /// Predicts the direction of a conditional branch.
    #[inline]
    pub fn predict_direction(&mut self, info: BranchInfo) -> bool {
        self.dir.predict(info, &self.pht_ctxs[info.thread.index()])
    }

    /// Trains the direction predictor with the resolved outcome.
    #[inline]
    pub fn update_direction(&mut self, info: BranchInfo, taken: bool, predicted: bool) {
        self.dir
            .update(info, taken, predicted, &self.pht_ctxs[info.thread.index()]);
    }

    /// Fused predict-then-update on the direction predictor, returning
    /// the prediction. State-identical to
    /// [`SecureFrontend::predict_direction`] followed by
    /// [`SecureFrontend::update_direction`] (see
    /// [`DirectionPredictor::train`]); the functional gap-stepping path
    /// uses it to halve index/hash computation.
    #[inline]
    pub fn train_direction(&mut self, info: BranchInfo, taken: bool) -> bool {
        self.dir
            .train(info, taken, &self.pht_ctxs[info.thread.index()])
    }

    /// Looks up the BTB for a predicted target.
    #[inline]
    pub fn predict_target(&mut self, info: BranchInfo) -> Option<Pc> {
        self.btb.lookup(info, &self.btb_ctxs[info.thread.index()])
    }

    /// Installs/refreshes the BTB mapping after a taken branch resolves.
    #[inline]
    pub fn update_target(&mut self, info: BranchInfo, target: Pc) {
        self.btb
            .update(info, target, &self.btb_ctxs[info.thread.index()]);
    }

    /// Pushes a return address (on a call).
    pub fn ras_push(&mut self, thread: ThreadId, return_addr: Pc) {
        self.ras.push(thread, return_addr);
    }

    /// Pops the predicted return address (on a return).
    pub fn ras_pop(&mut self, thread: ThreadId) -> Option<Pc> {
        self.ras.pop(thread)
    }

    /// Applies the mechanism's reaction to a core event.
    pub fn handle_event(&mut self, event: CoreEvent) {
        match event {
            CoreEvent::ContextSwitch { hw_thread } => {
                // The RAS content belongs to the departing software
                // context in every scheme.
                self.ras.clear_thread(hw_thread);
                match self.mechanism {
                    Mechanism::Baseline => {}
                    Mechanism::CompleteFlush => {
                        self.dir.flush_all();
                        self.btb.flush_all();
                        self.stats.complete_flushes += 1;
                    }
                    Mechanism::PreciseFlush => {
                        self.dir.flush_thread(hw_thread);
                        self.btb.flush_thread(hw_thread);
                        self.stats.precise_flushes += 1;
                    }
                    Mechanism::Xor(_) => {
                        self.keys.rekey(hw_thread);
                        self.refresh_ctxs(hw_thread);
                        self.stats.rekeys += 1;
                    }
                }
            }
            CoreEvent::PrivilegeSwitch { hw_thread, .. } => {
                if self.mechanism.rekeys_on_privilege_switch() {
                    self.keys.rekey(hw_thread);
                    self.refresh_ctxs(hw_thread);
                    self.stats.rekeys += 1;
                }
            }
        }
    }

    /// Uncached predict: derives the ctx per access and dispatches through
    /// the trait object path, exactly as the pre-batching front-end did.
    /// Used by the scalar reference simulator loop and equivalence tests.
    pub fn predict_direction_uncached(&mut self, info: BranchInfo) -> bool {
        let ctx = self.derive_pht_ctx(info.thread);
        let dir: &mut (dyn DirectionPredictor + Send) = &mut self.dir;
        dir.predict(info, &ctx)
    }

    /// Uncached update (see [`SecureFrontend::predict_direction_uncached`]).
    pub fn update_direction_uncached(&mut self, info: BranchInfo, taken: bool, predicted: bool) {
        let ctx = self.derive_pht_ctx(info.thread);
        let dir: &mut (dyn DirectionPredictor + Send) = &mut self.dir;
        dir.update(info, taken, predicted, &ctx);
    }

    /// Uncached BTB lookup (see
    /// [`SecureFrontend::predict_direction_uncached`]).
    pub fn predict_target_uncached(&mut self, info: BranchInfo) -> Option<Pc> {
        let ctx = self.derive_btb_ctx(info.thread);
        self.btb.lookup(info, &ctx)
    }

    /// Uncached BTB update (see
    /// [`SecureFrontend::predict_direction_uncached`]).
    pub fn update_target_uncached(&mut self, info: BranchInfo, target: Pc) {
        let ctx = self.derive_btb_ctx(info.thread);
        self.btb.update(info, target, &ctx);
    }

    /// Read access to the BTB (observability for tests/attacks).
    pub fn btb(&self) -> &Btb {
        &self.btb
    }

    /// Mutable access to the direction predictor (ablations).
    pub fn direction_predictor_mut(&mut self) -> &mut (dyn DirectionPredictor + Send) {
        &mut self.dir
    }

    /// Total predictor storage in bits (direction + BTB + RAS).
    pub fn storage_bits(&self) -> u64 {
        self.dir.storage_bits() + self.btb.storage_bits() + self.ras.storage_bits()
    }

    /// Name of the direction predictor.
    pub fn predictor_name(&self) -> &'static str {
        self.dir.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::{BranchKind, Privilege};

    fn cond(thread: u8, pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(thread), Pc::new(pc), BranchKind::Conditional)
    }

    fn ind(thread: u8, pc: u64) -> BranchInfo {
        BranchInfo::new(ThreadId::new(thread), Pc::new(pc), BranchKind::IndirectJump)
    }

    fn train_taken(fe: &mut SecureFrontend, info: BranchInfo, n: usize) {
        for _ in 0..n {
            let p = fe.predict_direction(info);
            fe.update_direction(info, true, p);
        }
    }

    #[test]
    fn baseline_state_survives_context_switch() {
        let mut fe = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Gshare,
            Mechanism::Baseline,
        ));
        let i = cond(0, 0x400);
        // Train past GHR saturation (13 history bits) so the last updates
        // repeatedly hit the same PHT entry.
        train_taken(&mut fe, i, 20);
        fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(0),
        });
        assert!(fe.predict_direction(i), "baseline must keep residual state");
    }

    #[test]
    fn complete_flush_wipes_on_context_switch() {
        let mut fe = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Gshare,
            Mechanism::CompleteFlush,
        ));
        let i = cond(0, 0x400);
        train_taken(&mut fe, i, 8);
        let t = ind(0, 0x800);
        fe.update_target(t, Pc::new(0x9000));
        fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(0),
        });
        assert!(!fe.predict_direction(i), "direction state must be flushed");
        assert_eq!(fe.predict_target(t), None, "BTB must be flushed");
        assert_eq!(fe.stats().complete_flushes, 1);
    }

    #[test]
    fn xor_rekey_invalidates_residual_state() {
        let mut fe = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
        ));
        let t = ind(0, 0x800);
        fe.update_target(t, Pc::new(0x9000));
        assert_eq!(fe.predict_target(t), Some(Pc::new(0x9000)));
        fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(0),
        });
        assert_ne!(
            fe.predict_target(t),
            Some(Pc::new(0x9000)),
            "rekey must hide the stored target"
        );
        assert_eq!(fe.stats().rekeys, 1);
    }

    #[test]
    fn xor_rekeys_on_privilege_switch_flush_does_not() {
        let mut xor = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
        ));
        let mut cf = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Gshare,
            Mechanism::CompleteFlush,
        ));
        let ev = CoreEvent::PrivilegeSwitch {
            hw_thread: ThreadId::new(0),
            to: Privilege::Kernel,
        };
        xor.handle_event(ev);
        cf.handle_event(ev);
        assert_eq!(xor.stats().rekeys, 1);
        assert_eq!(cf.stats().complete_flushes, 0);
    }

    #[test]
    fn precise_flush_spares_other_threads() {
        let mut fe = SecureFrontend::new(FrontendConfig::paper_gem5(
            PredictorKind::Gshare,
            Mechanism::PreciseFlush,
            2,
        ));
        let t0 = ind(0, 0x1000);
        let t1 = ind(1, 0x2000);
        fe.update_target(t0, Pc::new(0xaaa0));
        fe.update_target(t1, Pc::new(0xbbb0));
        fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(0),
        });
        assert_eq!(fe.predict_target(t0), None, "thread 0 entries flushed");
        assert_eq!(
            fe.predict_target(t1),
            Some(Pc::new(0xbbb0)),
            "thread 1 spared"
        );
        assert_eq!(fe.stats().precise_flushes, 1);
    }

    #[test]
    fn complete_flush_hurts_other_threads_on_smt() {
        // Observation 2 of the paper in miniature.
        let mut fe = SecureFrontend::new(FrontendConfig::paper_gem5(
            PredictorKind::Gshare,
            Mechanism::CompleteFlush,
            2,
        ));
        let t1 = ind(1, 0x2000);
        fe.update_target(t1, Pc::new(0xbbb0));
        // A context switch on hardware thread 0 wipes thread 1's state too.
        fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(0),
        });
        assert_eq!(fe.predict_target(t1), None);
    }

    #[test]
    fn xor_rekey_spares_other_smt_threads() {
        let mut fe = SecureFrontend::new(FrontendConfig::paper_gem5(
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
            2,
        ));
        let t1 = ind(1, 0x2000);
        fe.update_target(t1, Pc::new(0xbbb0));
        fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(0),
        });
        assert_eq!(
            fe.predict_target(t1),
            Some(Pc::new(0xbbb0)),
            "rekeying thread 0 must not disturb thread 1"
        );
    }

    #[test]
    fn ras_is_cleared_on_context_switch() {
        let mut fe = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Gshare,
            Mechanism::Baseline,
        ));
        fe.ras_push(ThreadId::new(0), Pc::new(0x1234));
        fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(0),
        });
        assert_eq!(fe.ras_pop(ThreadId::new(0)), None);
    }

    #[test]
    fn ctx_derivation_matches_mechanism() {
        let fe = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Gshare,
            Mechanism::xor_pht(),
        ));
        let pht = fe.pht_ctx(ThreadId::new(0));
        let btb = fe.btb_ctx(ThreadId::new(0));
        assert!(pht.content_enabled);
        assert!(!pht.index_enabled);
        assert!(!pht.enhanced, "plain XOR-PHT uses a fixed slice");
        assert!(!btb.content_enabled, "XOR-PHT leaves the BTB unprotected");
    }

    #[test]
    fn ctx_cache_tracks_rekeys() {
        // The cached ctxs must equal the reference derivation at all
        // times, including across rekeys of individual threads.
        let mut fe = SecureFrontend::new(FrontendConfig::paper_gem5(
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
            2,
        ));
        for t in 0..2u8 {
            assert_eq!(
                fe.pht_ctx(ThreadId::new(t)),
                fe.derive_pht_ctx(ThreadId::new(t))
            );
            assert_eq!(
                fe.btb_ctx(ThreadId::new(t)),
                fe.derive_btb_ctx(ThreadId::new(t))
            );
        }
        let before_t1 = fe.pht_ctx(ThreadId::new(1));
        fe.handle_event(CoreEvent::ContextSwitch {
            hw_thread: ThreadId::new(0),
        });
        fe.handle_event(CoreEvent::PrivilegeSwitch {
            hw_thread: ThreadId::new(0),
            to: Privilege::Kernel,
        });
        for t in 0..2u8 {
            assert_eq!(
                fe.pht_ctx(ThreadId::new(t)),
                fe.derive_pht_ctx(ThreadId::new(t))
            );
            assert_eq!(
                fe.btb_ctx(ThreadId::new(t)),
                fe.derive_btb_ctx(ThreadId::new(t))
            );
        }
        assert_eq!(
            fe.pht_ctx(ThreadId::new(1)),
            before_t1,
            "rekeying thread 0 must not touch thread 1's cached ctx"
        );
    }

    #[test]
    fn cached_and_uncached_paths_agree() {
        let mut a = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
        ));
        let mut b = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
        ));
        for n in 0..500u64 {
            let i = cond(0, 0x400 + (n % 17) * 4);
            let taken = n % 3 != 0;
            let pa = a.predict_direction(i);
            let pb = b.predict_direction_uncached(i);
            assert_eq!(pa, pb, "diverged at {n}");
            a.update_direction(i, taken, pa);
            b.update_direction_uncached(i, taken, pb);
            if taken {
                a.update_target(i, Pc::new(0x9000));
                b.update_target_uncached(i, Pc::new(0x9000));
            }
            assert_eq!(a.predict_target(i), b.predict_target_uncached(i));
            if n % 50 == 0 {
                let ev = CoreEvent::ContextSwitch {
                    hw_thread: ThreadId::new(0),
                };
                a.handle_event(ev);
                b.handle_event(ev);
            }
        }
    }

    #[test]
    fn debug_and_accessors() {
        let fe = SecureFrontend::new(FrontendConfig::paper_fpga(
            PredictorKind::Tournament,
            Mechanism::noisy_xor_bp(),
        ));
        let dbg = format!("{fe:?}");
        assert!(dbg.contains("tournament"));
        assert!(fe.storage_bits() > 0);
        assert_eq!(fe.predictor_name(), "tournament");
        assert!(fe.btb().valid_entries() == 0);
    }
}
