//! Isolation mechanism configurations.
//!
//! This module names every protection scheme the paper evaluates:
//!
//! * **Baseline** — conventional shared predictor, no protection;
//! * **Complete Flush** — flush every table on a context switch;
//! * **Precise Flush** — thread-ID-tagged tables, flush only the departing
//!   thread's entries on a context switch;
//! * **XOR-BP family** — the paper's contribution: content encoding
//!   (XOR-BTB / XOR-PHT / Enhanced-XOR-PHT) and index encoding
//!   (Noisy-XOR-*), with keys refreshed on context *and* privilege
//!   switches.

use serde::{Deserialize, Serialize};

use sbp_types::Codec;

/// Which predictor structures the XOR mechanism protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct XorConfig {
    /// Encode BTB tags and targets.
    pub protect_btb: bool,
    /// Encode PHT (direction predictor) contents.
    pub protect_pht: bool,
    /// Also randomize table indices (the "Noisy" variants).
    pub index_encoding: bool,
    /// Enhanced-XOR-PHT: per-entry key slices for narrow counters. With
    /// `false` the plain XOR-PHT single fixed key slice is used (weaker,
    /// paper §5.5 scenario 4).
    pub enhanced_pht: bool,
    /// The reversible content codec (paper §5.4 allows alternatives).
    pub codec: Codec,
    /// Refresh keys on privilege switches too (the paper's design; turning
    /// this off is the rekey-policy ablation).
    pub rekey_on_privilege: bool,
}

impl XorConfig {
    /// Full Noisy-XOR-BP protection (both structures, both encodings).
    pub const fn full() -> Self {
        XorConfig {
            protect_btb: true,
            protect_pht: true,
            index_encoding: true,
            enhanced_pht: true,
            codec: Codec::Xor,
            rekey_on_privilege: true,
        }
    }
}

impl Default for XorConfig {
    fn default() -> Self {
        XorConfig::full()
    }
}

/// An isolation mechanism, as named in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Mechanism {
    /// No protection (the paper's `Baseline`).
    #[default]
    Baseline,
    /// Flush all predictor tables on every context switch (`CF`).
    CompleteFlush,
    /// Flush only the departing thread's entries (thread-ID tags, `PF`).
    PreciseFlush,
    /// The XOR-based content/index encoding family.
    Xor(XorConfig),
}

impl Mechanism {
    /// `XOR-BTB`: content-encode the BTB only.
    pub const fn xor_btb() -> Self {
        Mechanism::Xor(XorConfig {
            protect_btb: true,
            protect_pht: false,
            index_encoding: false,
            enhanced_pht: true,
            codec: Codec::Xor,
            rekey_on_privilege: true,
        })
    }

    /// `Noisy-XOR-BTB`: content + index encoding of the BTB.
    pub const fn noisy_xor_btb() -> Self {
        Mechanism::Xor(XorConfig {
            protect_btb: true,
            protect_pht: false,
            index_encoding: true,
            enhanced_pht: true,
            codec: Codec::Xor,
            rekey_on_privilege: true,
        })
    }

    /// `XOR-PHT`: plain content encoding of the direction tables with a
    /// single fixed key slice (the weak variant of §5.2).
    pub const fn xor_pht() -> Self {
        Mechanism::Xor(XorConfig {
            protect_btb: false,
            protect_pht: true,
            index_encoding: false,
            enhanced_pht: false,
            codec: Codec::Xor,
            rekey_on_privilege: true,
        })
    }

    /// `Enhanced-XOR-PHT`: word-granular per-entry key slices.
    pub const fn enhanced_xor_pht() -> Self {
        Mechanism::Xor(XorConfig {
            protect_btb: false,
            protect_pht: true,
            index_encoding: false,
            enhanced_pht: true,
            codec: Codec::Xor,
            rekey_on_privilege: true,
        })
    }

    /// `Noisy-XOR-PHT`: Enhanced content encoding plus index encoding.
    pub const fn noisy_xor_pht() -> Self {
        Mechanism::Xor(XorConfig {
            protect_btb: false,
            protect_pht: true,
            index_encoding: true,
            enhanced_pht: true,
            codec: Codec::Xor,
            rekey_on_privilege: true,
        })
    }

    /// `XOR-BP`: content encoding of both BTB and PHT.
    pub const fn xor_bp() -> Self {
        Mechanism::Xor(XorConfig {
            protect_btb: true,
            protect_pht: true,
            index_encoding: false,
            enhanced_pht: true,
            codec: Codec::Xor,
            rekey_on_privilege: true,
        })
    }

    /// `Noisy-XOR-BP`: the paper's full mechanism.
    pub const fn noisy_xor_bp() -> Self {
        Mechanism::Xor(XorConfig::full())
    }

    /// Whether predictor tables need per-entry owner tags (only Precise
    /// Flush does).
    pub const fn needs_owner_tags(self) -> bool {
        matches!(self, Mechanism::PreciseFlush)
    }

    /// Whether the mechanism re-keys on privilege switches. Flushing on
    /// every syscall would be absurdly expensive, so the flush mechanisms
    /// act on context switches only; the XOR family re-keys on both, which
    /// is cheap (a register write) — this is why Table 4's privilege-switch
    /// counts matter for Noisy-XOR-BP.
    pub const fn rekeys_on_privilege_switch(self) -> bool {
        matches!(
            self,
            Mechanism::Xor(XorConfig {
                rekey_on_privilege: true,
                ..
            })
        )
    }

    /// Short label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Baseline => "Baseline",
            Mechanism::CompleteFlush => "CF",
            Mechanism::PreciseFlush => "PF",
            Mechanism::Xor(cfg) => match (cfg.protect_btb, cfg.protect_pht, cfg.index_encoding) {
                (true, false, false) => "XOR-BTB",
                (true, false, true) => "Noisy-XOR-BTB",
                (false, true, false) => {
                    if cfg.enhanced_pht {
                        "Enhanced-XOR-PHT"
                    } else {
                        "XOR-PHT"
                    }
                }
                (false, true, true) => "Noisy-XOR-PHT",
                (true, true, false) => "XOR-BP",
                (true, true, true) => "Noisy-XOR-BP",
                _ => "XOR-custom",
            },
        }
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(Mechanism::Baseline.label(), "Baseline");
        assert_eq!(Mechanism::CompleteFlush.label(), "CF");
        assert_eq!(Mechanism::PreciseFlush.label(), "PF");
        assert_eq!(Mechanism::xor_btb().label(), "XOR-BTB");
        assert_eq!(Mechanism::noisy_xor_btb().label(), "Noisy-XOR-BTB");
        assert_eq!(Mechanism::xor_pht().label(), "XOR-PHT");
        assert_eq!(Mechanism::enhanced_xor_pht().label(), "Enhanced-XOR-PHT");
        assert_eq!(Mechanism::noisy_xor_pht().label(), "Noisy-XOR-PHT");
        assert_eq!(Mechanism::xor_bp().label(), "XOR-BP");
        assert_eq!(Mechanism::noisy_xor_bp().label(), "Noisy-XOR-BP");
    }

    #[test]
    fn owner_tags_only_for_precise_flush() {
        assert!(Mechanism::PreciseFlush.needs_owner_tags());
        assert!(!Mechanism::CompleteFlush.needs_owner_tags());
        assert!(!Mechanism::noisy_xor_bp().needs_owner_tags());
    }

    #[test]
    fn only_xor_rekeys_on_privilege_switch() {
        assert!(Mechanism::noisy_xor_bp().rekeys_on_privilege_switch());
        assert!(Mechanism::xor_pht().rekeys_on_privilege_switch());
        assert!(!Mechanism::CompleteFlush.rekeys_on_privilege_switch());
        assert!(!Mechanism::Baseline.rekeys_on_privilege_switch());
    }

    #[test]
    fn display_delegates_to_label() {
        assert_eq!(Mechanism::noisy_xor_bp().to_string(), "Noisy-XOR-BP");
    }
}
