//! # sbp-core
//!
//! The paper's primary contribution: lightweight XOR-based isolation for
//! branch predictors.
//!
//! * [`mechanism`] names every evaluated scheme — Baseline, Complete Flush,
//!   Precise Flush, and the XOR family (XOR-BTB, XOR-PHT, Enhanced-XOR-PHT,
//!   Noisy-XOR-BTB, Noisy-XOR-PHT, XOR-BP, Noisy-XOR-BP);
//! * [`keys`] models the per-hardware-thread key registers refreshed on
//!   context and privilege switches;
//! * [`frontend`] bundles a direction predictor, BTB and RAS behind one
//!   interface and applies the configured mechanism.
//!
//! ```
//! use sbp_core::{FrontendConfig, Mechanism, SecureFrontend};
//! use sbp_predictors::PredictorKind;
//! use sbp_types::{BranchInfo, BranchKind, CoreEvent, Pc, ThreadId};
//!
//! let mut fe = SecureFrontend::new(FrontendConfig::paper_fpga(
//!     PredictorKind::Gshare,
//!     Mechanism::noisy_xor_bp(),
//! ));
//! let info = BranchInfo::new(ThreadId::new(0), Pc::new(0x800), BranchKind::IndirectJump);
//! fe.update_target(info, Pc::new(0x9000));
//! assert_eq!(fe.predict_target(info), Some(Pc::new(0x9000)));
//!
//! // A context switch re-keys: the residual entry becomes unreadable.
//! fe.handle_event(CoreEvent::ContextSwitch { hw_thread: ThreadId::new(0) });
//! assert_ne!(fe.predict_target(info), Some(Pc::new(0x9000)));
//! ```

pub mod frontend;
pub mod keys;
pub mod mechanism;

pub use frontend::{FrontendConfig, IsolationStats, SecureFrontend};
pub use keys::KeyManager;
pub use mechanism::{Mechanism, XorConfig};
