//! Per-hardware-thread key registers and the rekey policy.
//!
//! Models the paper's §5.4: "a dedicated hardware register per hardware
//! thread to record the key. Such a thread private register is invisible to
//! software. Once a context switch or a privilege switch occurs, a new
//! random number will be generated and updated to this private register."

use serde::{Deserialize, Serialize};

use sbp_types::rng::Xoshiro256;
use sbp_types::{KeyPair, ThreadId};

/// Key register file: one [`KeyPair`] per hardware thread context, fed by a
/// modeled hardware RNG.
///
/// ```
/// use sbp_core::keys::KeyManager;
/// use sbp_types::ThreadId;
///
/// let mut km = KeyManager::new(2, 42);
/// let t0 = ThreadId::new(0);
/// let before = km.keys(t0);
/// km.rekey(t0);
/// assert_ne!(km.keys(t0), before, "rekey must change the register");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyManager {
    keys: Vec<KeyPair>,
    rng: Xoshiro256,
    rekey_count: u64,
}

impl KeyManager {
    /// Creates a register file for `threads` hardware contexts, seeding
    /// each with an initial random key.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn new(threads: usize, seed: u64) -> Self {
        assert!(threads > 0, "at least one hardware thread required");
        let mut rng = Xoshiro256::new(seed);
        let keys = (0..threads)
            .map(|_| KeyPair::from_random(rng.next_u64()))
            .collect();
        KeyManager {
            keys,
            rng,
            rekey_count: 0,
        }
    }

    /// Current key pair of `thread`.
    pub fn keys(&self, thread: ThreadId) -> KeyPair {
        self.keys[thread.index()]
    }

    /// Generates a fresh random key pair for `thread` (hardware action on a
    /// context or privilege switch). Returns the new pair.
    pub fn rekey(&mut self, thread: ThreadId) -> KeyPair {
        let pair = KeyPair::from_random(self.rng.next_u64());
        self.keys[thread.index()] = pair;
        self.rekey_count += 1;
        pair
    }

    /// Number of rekey operations performed (observability for tests and
    /// the Table 4 harness).
    pub fn rekey_count(&self) -> u64 {
        self.rekey_count
    }

    /// Number of hardware thread contexts.
    pub fn threads(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_keys_differ_across_threads() {
        let km = KeyManager::new(4, 7);
        let pairs: Vec<KeyPair> = (0..4).map(|t| km.keys(ThreadId::new(t))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(pairs[i], pairs[j], "threads {i} and {j} share a key");
            }
        }
    }

    #[test]
    fn rekey_changes_only_target_thread() {
        let mut km = KeyManager::new(2, 9);
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let k1_before = km.keys(t1);
        let old = km.keys(t0);
        let new = km.rekey(t0);
        assert_ne!(old, new);
        assert_eq!(km.keys(t0), new);
        assert_eq!(km.keys(t1), k1_before, "other thread's key must not change");
        assert_eq!(km.rekey_count(), 1);
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = KeyManager::new(1, 5);
        let mut b = KeyManager::new(1, 5);
        assert_eq!(a.keys(ThreadId::new(0)), b.keys(ThreadId::new(0)));
        assert_eq!(a.rekey(ThreadId::new(0)), b.rekey(ThreadId::new(0)));
        assert_eq!(a.threads(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one hardware thread")]
    fn zero_threads_panics() {
        let _ = KeyManager::new(0, 1);
    }
}
