//! [`AttackKind`]: the enumerable, seedable entry point over every PoC
//! attack campaign in this crate.
//!
//! Each variant names one campaign; [`AttackKind::run`] dispatches a cell
//! of the Table 1 grid — attack × mechanism × predictor × core mode — with
//! an explicit trial count and seed, which is exactly the shape the sweep
//! engine's attack jobs need. The structure/class metadata
//! ([`AttackKind::structure`], [`AttackKind::is_reuse`]) reproduce the
//! paper's row/column grouping of the security matrix.

use serde::{Deserialize, Serialize};

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;

use crate::branchscope::{BranchScope, ReferenceBranchScope};
use crate::classify::AttackOutcome;
use crate::sbpa::{JumpAslr, Sbpa};
use crate::shadowing::BranchShadowing;
use crate::spectre_v2::SpectreV2;

/// One of the proof-of-concept attack campaigns behind Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Malicious BTB training via a shared indirect call (reuse, BTB).
    SpectreV2,
    /// Branch-shadowing BTB hit probing (reuse, BTB).
    BranchShadowing,
    /// PHT direction perception via a shared 2-bit counter (reuse, PHT).
    BranchScope,
    /// The scenario-4 reference-branch variant that breaks plain XOR-PHT
    /// (reuse, PHT).
    ReferenceBranchScope,
    /// BTB set-eviction sensing (contention, BTB).
    Sbpa,
    /// Jump-over-ASLR set-index recovery (contention, BTB; inherently
    /// concurrent — the single-thread mode is ignored).
    JumpAslr,
}

impl AttackKind {
    /// Every campaign, matrix order (BTB reuse, PHT reuse, contention).
    pub const ALL: [AttackKind; 6] = [
        AttackKind::SpectreV2,
        AttackKind::BranchShadowing,
        AttackKind::BranchScope,
        AttackKind::ReferenceBranchScope,
        AttackKind::Sbpa,
        AttackKind::JumpAslr,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::SpectreV2 => "SpectreV2",
            AttackKind::BranchShadowing => "BranchShadowing",
            AttackKind::BranchScope => "BranchScope",
            AttackKind::ReferenceBranchScope => "ReferenceBranchScope",
            AttackKind::Sbpa => "SBPA",
            AttackKind::JumpAslr => "JumpAslr",
        }
    }

    /// The predictor structure the campaign targets (Table 1 row group).
    pub fn structure(self) -> &'static str {
        match self {
            AttackKind::BranchScope | AttackKind::ReferenceBranchScope => "PHT",
            _ => "BTB",
        }
    }

    /// Whether this is a reuse-class attack (`false`: contention class).
    pub fn is_reuse(self) -> bool {
        !matches!(self, AttackKind::Sbpa | AttackKind::JumpAslr)
    }

    /// Runs one campaign cell and returns its outcome.
    ///
    /// `predictor` selects the direction predictor the shared front-end
    /// runs; the PHT campaigns (BranchScope family) always attack the
    /// deterministic bimodal harness and ignore it, and
    /// [`AttackKind::JumpAslr`] is concurrent by construction and ignores
    /// `smt`. Identical arguments always produce the identical outcome —
    /// the property the sweep store's resume path relies on.
    pub fn run(
        self,
        mechanism: Mechanism,
        predictor: PredictorKind,
        smt: bool,
        trials: u64,
        seed: u64,
    ) -> AttackOutcome {
        match self {
            AttackKind::SpectreV2 => SpectreV2::new(mechanism, smt)
                .with_predictor(predictor)
                .run(trials, seed),
            AttackKind::BranchShadowing => BranchShadowing::new(mechanism, smt)
                .with_predictor(predictor)
                .run(trials, seed),
            AttackKind::BranchScope => BranchScope::new(mechanism, smt).run(trials, seed),
            AttackKind::ReferenceBranchScope => {
                ReferenceBranchScope::new(mechanism, smt).run(trials, seed)
            }
            AttackKind::Sbpa => Sbpa::new(mechanism, smt)
                .with_predictor(predictor)
                .run(trials, seed),
            AttackKind::JumpAslr => JumpAslr::new(mechanism)
                .with_predictor(predictor)
                .run(trials, seed),
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Verdict;

    #[test]
    fn labels_and_metadata_cover_all_kinds() {
        let labels: std::collections::BTreeSet<&str> =
            AttackKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), AttackKind::ALL.len());
        assert_eq!(AttackKind::BranchScope.structure(), "PHT");
        assert_eq!(AttackKind::Sbpa.structure(), "BTB");
        assert!(AttackKind::SpectreV2.is_reuse());
        assert!(!AttackKind::JumpAslr.is_reuse());
    }

    #[test]
    fn dispatch_matches_the_direct_campaigns() {
        let direct = SpectreV2::new(Mechanism::Baseline, false).run(300, 42);
        let via_kind =
            AttackKind::SpectreV2.run(Mechanism::Baseline, PredictorKind::Gshare, false, 300, 42);
        assert_eq!(direct, via_kind);
        let direct = BranchScope::new(Mechanism::CompleteFlush, true).run(300, 7);
        let via_kind = AttackKind::BranchScope.run(
            Mechanism::CompleteFlush,
            PredictorKind::TageScL, // ignored: bimodal harness
            true,
            300,
            7,
        );
        assert_eq!(direct, via_kind);
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        for kind in AttackKind::ALL {
            let trials = if kind == AttackKind::JumpAslr { 5 } else { 200 };
            let a = kind.run(Mechanism::Baseline, PredictorKind::Gshare, false, trials, 9);
            let b = kind.run(Mechanism::Baseline, PredictorKind::Gshare, false, trials, 9);
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn baseline_is_broken_via_the_dispatcher() {
        let out = AttackKind::BranchShadowing.run(
            Mechanism::Baseline,
            PredictorKind::Gshare,
            false,
            500,
            3,
        );
        assert_eq!(out.verdict(), Verdict::NoProtection);
    }
}
