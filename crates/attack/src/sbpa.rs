//! SBPA-style BTB contention attack and the Jump-over-ASLR variant.
//!
//! The attacker occupies all the ways of the BTB set that the victim's
//! target branch maps to. The BTB is only updated on a *taken* branch, so
//! an eviction of one of the attacker's entries reveals that the victim's
//! branch was taken.

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_types::{BranchKind, BranchRecord, Pc};

use crate::classify::AttackOutcome;
use crate::harness::{AttackHarness, Party};

/// The victim's target branch.
const TARGET_PC: Pc = Pc::new(0x0041_0400);

/// SBPA contention campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sbpa {
    /// The defense under test.
    pub mechanism: Mechanism,
    /// Concurrent (SMT) or time-sliced attacker.
    pub smt: bool,
    /// Direction predictor of the shared front-end.
    pub predictor: PredictorKind,
}

impl Sbpa {
    /// Creates the campaign.
    pub fn new(mechanism: Mechanism, smt: bool) -> Self {
        Sbpa {
            mechanism,
            smt,
            predictor: PredictorKind::Gshare,
        }
    }

    /// Overrides the front-end's direction predictor.
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Runs `trials` prime-execute-probe rounds with random secrets.
    pub fn run(&self, trials: u64, seed: u64) -> AttackOutcome {
        let mut h = AttackHarness::new(self.predictor, self.mechanism, self.smt, 0.0, seed);
        // Attacker branches that collide with the victim's set: same set
        // index, different tags. Set stride = sets * 4 bytes.
        let (sets, ways) = {
            let cfg = if self.smt {
                sbp_predictors::BtbConfig::paper_gem5()
            } else {
                sbp_predictors::BtbConfig::paper_fpga()
            };
            (cfg.sets as u64, cfg.ways)
        };
        let stride = sets * 4;
        let prime_pcs: Vec<Pc> = (1..=ways as u64)
            .map(|i| Pc::new(TARGET_PC.addr() + i * stride))
            .collect();
        let mut correct = 0u64;
        for _ in 0..trials {
            let secret = h.rng().chance(0.5);
            // Prime: fill every way of the set.
            for (i, &pc) in prime_pcs.iter().enumerate() {
                let rec = BranchRecord::taken(
                    pc,
                    BranchKind::IndirectJump,
                    Pc::new(0x0100_0000 + i as u64 * 0x40),
                    0,
                );
                h.exec(Party::Attacker, &rec);
            }
            // Victim executes its secret-dependent branch once.
            let rec = if secret {
                BranchRecord::taken(TARGET_PC, BranchKind::Conditional, TARGET_PC.offset(128), 0)
            } else {
                BranchRecord::not_taken(TARGET_PC, 0)
            };
            h.exec(Party::Victim, &rec);
            // Probe: a miss on any primed branch means an eviction, which
            // means the victim's branch was taken.
            let mut evicted = false;
            for &pc in &prime_pcs {
                if h.probe_target(Party::Attacker, pc).is_none() {
                    evicted = true;
                }
            }
            if evicted == secret {
                correct += 1;
            }
        }
        AttackOutcome {
            success_rate: correct as f64 / trials as f64,
            chance: 0.5,
            trials,
        }
    }
}

/// Jump-over-ASLR: recover the *set index bits* of a victim branch address
/// by finding which BTB set the victim's execution perturbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JumpAslr {
    /// The defense under test.
    pub mechanism: Mechanism,
    /// Direction predictor of the shared front-end.
    pub predictor: PredictorKind,
}

impl JumpAslr {
    /// Creates the campaign (inherently an SMT/concurrent attack in our
    /// model: single-stepping across many sets is modeled as no rekey in
    /// between).
    pub fn new(mechanism: Mechanism) -> Self {
        JumpAslr {
            mechanism,
            predictor: PredictorKind::Gshare,
        }
    }

    /// Overrides the front-end's direction predictor.
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Runs `trials` rounds; each round hides the victim branch in a
    /// random set and asks whether the attacker recovers that set index.
    pub fn run(&self, trials: u64, seed: u64) -> AttackOutcome {
        // The concurrent harness uses the gem5 SMT core's BTB geometry.
        let cfg = sbp_predictors::BtbConfig::paper_gem5();
        let sets = cfg.sets as u64;
        let ways = cfg.ways;
        let stride = sets * 4;
        let mut correct = 0u64;
        for t in 0..trials {
            // Fresh harness per round: fresh keys model a new victim run.
            let mut h = AttackHarness::new(
                self.predictor,
                self.mechanism,
                true,
                0.0,
                seed ^ (t.wrapping_mul(0x9e37_79b9)),
            );
            let secret_set = h.rng().next_below(sets);
            let victim_pc = Pc::new(0x0200_0000 + secret_set * 4);
            // Attacker primes every set. The ×17 stride multiplier
            // spreads the attacker's partial tags away from the victim's
            // (which remaps to 1), so a victim insertion always evicts
            // instead of refreshing a tag-colliding entry.
            for s in 0..sets {
                for w in 0..ways as u64 {
                    let pc = Pc::new(0x0800_0000 + s * 4 + (w + 1) * stride * 17);
                    let rec = BranchRecord::taken(
                        pc,
                        BranchKind::IndirectJump,
                        Pc::new(0x0900_0000 + w * 0x40),
                        0,
                    );
                    h.exec(Party::Attacker, &rec);
                }
            }
            // Victim executes its taken branch a few times.
            for _ in 0..ways {
                let rec = BranchRecord::taken(
                    victim_pc,
                    BranchKind::Conditional,
                    victim_pc.offset(256),
                    0,
                );
                h.exec(Party::Victim, &rec);
            }
            // Attacker probes every set looking for evictions and claims
            // the victim's address bits are the evicted set's index.
            let mut claimed = None;
            'outer: for s in 0..sets {
                for w in 0..ways as u64 {
                    let pc = Pc::new(0x0800_0000 + s * 4 + (w + 1) * stride * 17);
                    if h.probe_target(Party::Attacker, pc).is_none() {
                        claimed = Some(s);
                        break 'outer;
                    }
                }
            }
            if claimed == Some(secret_set) {
                correct += 1;
            }
        }
        AttackOutcome {
            success_rate: correct as f64 / trials as f64,
            chance: 1.0 / sets as f64,
            trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Verdict;

    #[test]
    fn baseline_contention_works_single_thread() {
        let out = Sbpa::new(Mechanism::Baseline, false).run(600, 3);
        assert!(
            out.success_rate > 0.9,
            "baseline SBPA accuracy {}",
            out.success_rate
        );
        assert_eq!(out.verdict(), Verdict::NoProtection);
    }

    #[test]
    fn xor_btb_defends_contention_single_thread() {
        // Scenario 2: keys change across the prime → probe gap, so the
        // attacker's own history is unrecognizable.
        let out = Sbpa::new(Mechanism::xor_btb(), false).run(600, 3);
        assert_eq!(out.verdict(), Verdict::Defend, "got {}", out.success_rate);
    }

    #[test]
    fn xor_btb_smt_contention_not_protected() {
        // Content encoding does not hide *evictions*: Table 1 marks
        // XOR-BTB SMT contention as No Protection.
        let out = Sbpa::new(Mechanism::xor_btb(), true).run(600, 5);
        assert_eq!(
            out.verdict(),
            Verdict::NoProtection,
            "got {}",
            out.success_rate
        );
    }

    #[test]
    fn noisy_xor_btb_mitigates_smt_contention() {
        // Index scrambling decorrelates the victim's set from the
        // attacker's primed set: success collapses toward chance.
        let out = Sbpa::new(Mechanism::noisy_xor_btb(), true).run(600, 7);
        assert!(
            out.success_rate < 0.75,
            "noisy XOR should degrade SMT contention, got {}",
            out.success_rate
        );
    }

    #[test]
    fn precise_flush_does_not_stop_contention() {
        // PF flushes on switches but the attacker's entries are its own —
        // they survive its own switches? No: the attacker is swapped out
        // when the victim runs, so ITS entries are flushed; probing then
        // always misses → inference collapses. On SMT there are no
        // switches and contention persists.
        let out = Sbpa::new(Mechanism::PreciseFlush, true).run(600, 9);
        assert_eq!(
            out.verdict(),
            Verdict::NoProtection,
            "got {}",
            out.success_rate
        );
    }

    #[test]
    fn jump_aslr_recovers_address_on_baseline() {
        let out = JumpAslr::new(Mechanism::Baseline).run(30, 11);
        assert!(
            out.success_rate > 0.9,
            "ASLR bypass rate {}",
            out.success_rate
        );
    }

    #[test]
    fn jump_aslr_fails_under_noisy_xor() {
        let out = JumpAslr::new(Mechanism::noisy_xor_btb()).run(30, 11);
        assert!(
            out.success_rate < 0.2,
            "ASLR bypass rate {}",
            out.success_rate
        );
        assert_eq!(out.verdict(), Verdict::Defend);
    }
}
