//! Spectre-v2-style malicious BTB training (paper Listing 1).
//!
//! A function pointer call `p()` inside `shared_interface()` is reachable
//! by both parties. The attacker repeatedly executes it with `p` pointing
//! at `attacker_function`, planting a BTB entry; when the victim executes
//! the same indirect call, its *speculative* target is whatever the BTB
//! supplies. A trial succeeds when the victim's predicted target is the
//! attacker's gadget.

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_types::{BranchKind, BranchRecord, Pc};

use crate::classify::AttackOutcome;
use crate::harness::{AttackHarness, Party};

/// The shared indirect call site.
const SHARED_PC: Pc = Pc::new(0x0040_0100);
/// The attacker's gadget address.
const MALICIOUS: Pc = Pc::new(0x0bad_0000);
/// The victim's legitimate function.
const LEGIT: Pc = Pc::new(0x600d_0000);

/// Configuration of the malicious-training campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectreV2 {
    /// The defense under test.
    pub mechanism: Mechanism,
    /// Concurrent (SMT) or time-sliced attacker.
    pub smt: bool,
    /// Per-trial measurement error probability (models the paper's
    /// Flush+Reload noise: ~3.5 % false negatives on the FPGA baseline).
    pub false_negative: f64,
    /// False positive probability of the covert channel.
    pub false_positive: f64,
    /// Training executions per trial.
    pub trainings: u32,
    /// Direction predictor of the shared front-end (the BTB under attack
    /// is always present).
    pub predictor: PredictorKind,
}

impl SpectreV2 {
    /// The paper's PoC setup against `mechanism`.
    pub fn new(mechanism: Mechanism, smt: bool) -> Self {
        SpectreV2 {
            mechanism,
            smt,
            false_negative: 0.035,
            false_positive: 0.005,
            trainings: 4,
            predictor: PredictorKind::Gshare,
        }
    }

    /// Overrides the front-end's direction predictor.
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Runs `trials` iterations and reports the training accuracy.
    pub fn run(&self, trials: u64, seed: u64) -> AttackOutcome {
        let mut h = AttackHarness::new(self.predictor, self.mechanism, self.smt, 0.0, seed);
        let train = BranchRecord::taken(SHARED_PC, BranchKind::IndirectCall, MALICIOUS, 0);
        let legit = BranchRecord::taken(SHARED_PC, BranchKind::IndirectCall, LEGIT, 0);
        let mut successes = 0u64;
        for _ in 0..trials {
            // Attacker trains the shared entry.
            for _ in 0..self.trainings {
                h.exec(Party::Attacker, &train);
            }
            // Victim runs: its speculative target is the BTB's answer.
            let speculated = h.probe_target(Party::Victim, SHARED_PC);
            let injected = speculated == Some(MALICIOUS);
            // The victim then executes the call for real (retraining the
            // entry toward the legitimate target).
            h.exec(Party::Victim, &legit);
            // Covert-channel measurement noise.
            let observed = if injected {
                !h.rng().chance(self.false_negative)
            } else {
                h.rng().chance(self.false_positive)
            };
            if observed {
                successes += 1;
            }
        }
        AttackOutcome {
            success_rate: successes as f64 / trials as f64,
            chance: self.false_positive,
            trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Verdict;

    #[test]
    fn baseline_training_succeeds() {
        let out = SpectreV2::new(Mechanism::Baseline, false).run(2000, 42);
        assert!(
            (0.93..=0.99).contains(&out.success_rate),
            "baseline accuracy {} (paper: 96.5 %)",
            out.success_rate
        );
        assert_eq!(out.verdict(), Verdict::NoProtection);
    }

    #[test]
    fn xor_btb_defends_single_thread() {
        let out = SpectreV2::new(Mechanism::xor_btb(), false).run(2000, 42);
        assert!(
            out.success_rate < 0.02,
            "defended accuracy {}",
            out.success_rate
        );
        assert_eq!(out.verdict(), Verdict::Defend);
    }

    #[test]
    fn noisy_xor_btb_defends_smt() {
        let out = SpectreV2::new(Mechanism::noisy_xor_btb(), true).run(2000, 7);
        assert!(
            out.success_rate < 0.02,
            "SMT defended accuracy {}",
            out.success_rate
        );
        assert_eq!(out.verdict(), Verdict::Defend);
    }

    #[test]
    fn complete_flush_fails_on_smt() {
        // No context switches happen between SMT threads, so flushing
        // never triggers: the attack works like the baseline.
        let out = SpectreV2::new(Mechanism::CompleteFlush, true).run(1000, 9);
        assert_eq!(out.verdict(), Verdict::NoProtection);
    }

    #[test]
    fn complete_flush_defends_single_thread() {
        let out = SpectreV2::new(Mechanism::CompleteFlush, false).run(1000, 9);
        assert_eq!(out.verdict(), Verdict::Defend);
    }

    #[test]
    fn xor_bp_defends_smt_reuse() {
        // Different per-thread keys: the victim cannot decode the
        // attacker's planted entry.
        let out = SpectreV2::new(Mechanism::xor_bp(), true).run(1000, 5);
        assert_eq!(out.verdict(), Verdict::Defend);
    }
}
