//! Branch-shadowing (SGX-style) BTB reuse attack.
//!
//! The attacker constructs a *shadow* of the victim's code so that its
//! shadow branch aliases the victim's branch in the BTB. After the victim
//! executes, a fast (BTB-hit) shadow branch reveals that the victim's
//! branch was taken.

use sbp_core::Mechanism;
use sbp_predictors::PredictorKind;
use sbp_types::{BranchKind, BranchRecord, Pc};

use crate::classify::AttackOutcome;
use crate::harness::{AttackHarness, Party};

/// The aliased branch address (attacker's shadow maps to the same entry).
const TARGET_PC: Pc = Pc::new(0x0042_0800);

/// Branch shadowing campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchShadowing {
    /// The defense under test.
    pub mechanism: Mechanism,
    /// Concurrent (SMT) or time-sliced attacker.
    pub smt: bool,
    /// Direction predictor of the shared front-end.
    pub predictor: PredictorKind,
}

impl BranchShadowing {
    /// Creates the campaign.
    pub fn new(mechanism: Mechanism, smt: bool) -> Self {
        BranchShadowing {
            mechanism,
            smt,
            predictor: PredictorKind::Gshare,
        }
    }

    /// Overrides the front-end's direction predictor.
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Runs `trials` rounds with random secrets; reports inference
    /// accuracy.
    pub fn run(&self, trials: u64, seed: u64) -> AttackOutcome {
        let mut h = AttackHarness::new(self.predictor, self.mechanism, self.smt, 0.0, seed);
        let (sets, ways) = {
            let cfg = if self.smt {
                sbp_predictors::BtbConfig::paper_gem5()
            } else {
                sbp_predictors::BtbConfig::paper_fpga()
            };
            (cfg.sets as u64, cfg.ways)
        };
        let stride = sets * 4;
        let mut correct = 0u64;
        for _ in 0..trials {
            let secret = h.rng().chance(0.5);
            // Evict the victim's set first so a later hit is attributable
            // to the victim's execution.
            for w in 1..=ways as u64 {
                let pc = Pc::new(TARGET_PC.addr() + w * stride);
                let rec = BranchRecord::taken(
                    pc,
                    BranchKind::IndirectJump,
                    Pc::new(0x0300_0000 + w * 0x40),
                    0,
                );
                h.exec(Party::Attacker, &rec);
            }
            // Victim executes the secret branch once (single-stepped).
            let rec = if secret {
                BranchRecord::taken(TARGET_PC, BranchKind::Conditional, TARGET_PC.offset(96), 0)
            } else {
                BranchRecord::not_taken(TARGET_PC, 0)
            };
            h.exec(Party::Victim, &rec);
            // Probe: the shadow branch at the aliased address hits the BTB
            // (executes fast) iff the victim's branch was taken.
            let inferred = h.probe_target(Party::Attacker, TARGET_PC).is_some();
            if inferred == secret {
                correct += 1;
            }
        }
        AttackOutcome {
            success_rate: correct as f64 / trials as f64,
            chance: 0.5,
            trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Verdict;

    #[test]
    fn baseline_shadowing_works() {
        let out = BranchShadowing::new(Mechanism::Baseline, false).run(800, 3);
        assert!(out.success_rate > 0.9, "accuracy {}", out.success_rate);
        assert_eq!(out.verdict(), Verdict::NoProtection);
    }

    #[test]
    fn xor_btb_defends_shadowing() {
        let out = BranchShadowing::new(Mechanism::xor_btb(), false).run(800, 3);
        assert_eq!(out.verdict(), Verdict::Defend, "got {}", out.success_rate);
    }

    #[test]
    fn noisy_xor_btb_defends_smt_shadowing() {
        let out = BranchShadowing::new(Mechanism::noisy_xor_btb(), true).run(800, 5);
        assert_eq!(out.verdict(), Verdict::Defend, "got {}", out.success_rate);
    }

    #[test]
    fn complete_flush_fails_smt_shadowing() {
        let out = BranchShadowing::new(Mechanism::CompleteFlush, true).run(800, 7);
        assert_eq!(
            out.verdict(),
            Verdict::NoProtection,
            "got {}",
            out.success_rate
        );
    }
}
