//! BranchScope: PHT direction perception (paper Listing 2), plus the
//! scenario-4 *reference branch* variant that separates plain XOR-PHT from
//! Enhanced-XOR-PHT.

use sbp_core::Mechanism;
use sbp_types::{BranchRecord, Pc};

use crate::classify::AttackOutcome;
use crate::harness::{AttackHarness, Party};

/// The victim's secret-dependent branch.
const TARGET_PC: Pc = Pc::new(0x0040_2000);
/// A biased branch in the victim whose direction is publicly known
/// (used by the reference variant).
const REFERENCE_PC: Pc = Pc::new(0x0040_2abc);

/// Classic BranchScope: prime the shared 2-bit counter to a weak state,
/// single-step the victim across its secret branch, probe the counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchScope {
    /// The defense under test.
    pub mechanism: Mechanism,
    /// Concurrent (SMT) or time-sliced attacker.
    pub smt: bool,
    /// Probability that one prime-probe round is disturbed (ambient noise).
    pub disturbance: f64,
}

impl BranchScope {
    /// The paper's PoC setup.
    pub fn new(mechanism: Mechanism, smt: bool) -> Self {
        BranchScope {
            mechanism,
            smt,
            disturbance: 0.028,
        }
    }

    /// Runs `trials` prime-probe rounds with random secret directions and
    /// reports the inference accuracy.
    pub fn run(&self, trials: u64, seed: u64) -> AttackOutcome {
        let mut h = AttackHarness::with_bimodal(self.mechanism, self.smt, 0.0, seed);
        let mut correct = 0u64;
        for _ in 0..trials {
            let secret = h.rng().chance(0.5);
            // Prime: drive the counter to weakly-taken (state 2):
            // three not-taken (saturate at 0), then two taken.
            for _ in 0..3 {
                h.exec(Party::Attacker, &BranchRecord::not_taken(TARGET_PC, 0));
            }
            for _ in 0..2 {
                h.exec(
                    Party::Attacker,
                    &BranchRecord::taken(
                        TARGET_PC,
                        sbp_types::BranchKind::Conditional,
                        TARGET_PC.offset(64),
                        0,
                    ),
                );
            }
            // Victim single-steps across the secret branch once.
            let victim_rec = if secret {
                BranchRecord::taken(
                    TARGET_PC,
                    sbp_types::BranchKind::Conditional,
                    TARGET_PC.offset(64),
                    0,
                )
            } else {
                BranchRecord::not_taken(TARGET_PC, 0)
            };
            h.exec(Party::Victim, &victim_rec);
            // Probe: from weak-taken, the counter is ≥ weak-taken iff the
            // victim's branch was taken.
            let mut inferred = h.probe_direction(Party::Attacker, TARGET_PC);
            if h.rng().chance(self.disturbance) {
                inferred = !inferred;
            }
            if inferred == secret {
                correct += 1;
            }
        }
        AttackOutcome {
            success_rate: correct as f64 / trials as f64,
            chance: 0.5,
            trials,
        }
    }
}

/// The scenario-4 corner case: with *plain* XOR-PHT every entry is encoded
/// with the same fixed key slice, so the XOR of two decoded prediction
/// bits cancels the key. An attacker who knows a reference branch's true
/// direction recovers the target branch's direction even though every key
/// refresh happened in between. Enhanced-XOR-PHT (per-entry slices) and
/// Noisy-XOR-PHT (scrambled indices) break the cancellation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceBranchScope {
    /// The defense under test.
    pub mechanism: Mechanism,
    /// Concurrent (SMT) or time-sliced attacker.
    pub smt: bool,
}

impl ReferenceBranchScope {
    /// Creates the campaign.
    pub fn new(mechanism: Mechanism, smt: bool) -> Self {
        ReferenceBranchScope { mechanism, smt }
    }

    /// Runs `trials` rounds and reports inference accuracy.
    pub fn run(&self, trials: u64, seed: u64) -> AttackOutcome {
        let mut h = AttackHarness::with_bimodal(self.mechanism, self.smt, 0.0, seed);
        let mut correct = 0u64;
        let taken =
            |pc: Pc| BranchRecord::taken(pc, sbp_types::BranchKind::Conditional, pc.offset(64), 0);
        for _ in 0..trials {
            let secret = h.rng().chance(0.5);
            // Victim saturates both counters in one scheduling window: the
            // reference branch (known: always taken) and the secret branch.
            for _ in 0..4 {
                h.exec(Party::Victim, &taken(REFERENCE_PC));
                let rec = if secret {
                    taken(TARGET_PC)
                } else {
                    BranchRecord::not_taken(TARGET_PC, 0)
                };
                h.exec(Party::Victim, &rec);
            }
            // Attacker probes both entries under its own (different) key
            // and XORs the prediction bits: with a fixed key slice the key
            // contribution cancels.
            let p_target = h.probe_direction(Party::Attacker, TARGET_PC);
            let p_ref = h.probe_direction(Party::Attacker, REFERENCE_PC);
            let inferred = p_target == p_ref; // ref is known taken
            if inferred == secret {
                correct += 1;
            }
        }
        AttackOutcome {
            success_rate: correct as f64 / trials as f64,
            chance: 0.5,
            trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Verdict;

    #[test]
    fn baseline_perceives_direction() {
        let out = BranchScope::new(Mechanism::Baseline, false).run(2000, 3);
        assert!(
            (0.93..=0.995).contains(&out.success_rate),
            "baseline accuracy {} (paper: 97.2 %)",
            out.success_rate
        );
        assert_eq!(out.verdict(), Verdict::NoProtection);
    }

    #[test]
    fn enhanced_xor_pht_defends() {
        let out = BranchScope::new(Mechanism::enhanced_xor_pht(), false).run(2000, 3);
        assert!(out.success_rate < 0.57, "accuracy {}", out.success_rate);
        assert_eq!(out.verdict(), Verdict::Defend);
    }

    #[test]
    fn noisy_xor_pht_defends() {
        let out = BranchScope::new(Mechanism::noisy_xor_pht(), false).run(2000, 5);
        assert_eq!(out.verdict(), Verdict::Defend);
    }

    #[test]
    fn complete_flush_fails_on_smt_reuse() {
        // Concurrent attacker: no switch, no flush, shared counters.
        let out = BranchScope::new(Mechanism::CompleteFlush, true).run(1000, 7);
        assert_eq!(out.verdict(), Verdict::NoProtection);
    }

    #[test]
    fn reference_attack_breaks_plain_xor_pht() {
        // The paper's scenario-4 corner case: plain XOR-PHT leaks through
        // the fixed-slice cancellation.
        let out = ReferenceBranchScope::new(Mechanism::xor_pht(), false).run(1000, 11);
        assert!(
            out.success_rate > 0.9,
            "reference attack should break plain XOR-PHT, got {}",
            out.success_rate
        );
    }

    #[test]
    fn reference_attack_fails_on_enhanced() {
        let out = ReferenceBranchScope::new(Mechanism::enhanced_xor_pht(), false).run(1000, 11);
        assert_eq!(out.verdict(), Verdict::Defend, "got {}", out.success_rate);
    }

    #[test]
    fn reference_attack_fails_on_noisy() {
        let out = ReferenceBranchScope::new(Mechanism::noisy_xor_pht(), false).run(1000, 13);
        assert_eq!(out.verdict(), Verdict::Defend, "got {}", out.success_rate);
    }
}
