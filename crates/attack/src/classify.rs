//! Verdict classification: mapping measured attack success rates onto the
//! paper's Defend / Mitigate / No Protection labels (Table 1).

use serde::{Deserialize, Serialize};

/// Protection verdict for one (mechanism, attack, core-mode) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Attack success is statistically indistinguishable from chance.
    Defend,
    /// Attack success is significantly degraded but above chance.
    Mitigate,
    /// Attack success is close to the unprotected baseline.
    NoProtection,
}

impl Verdict {
    /// Label matching the paper's Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Defend => "Defend",
            Verdict::Mitigate => "Mitigate",
            Verdict::NoProtection => "No Protection",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Result of an attack campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Fraction of trials in which the adversary achieved its goal.
    pub success_rate: f64,
    /// Success rate of blind guessing for this attack.
    pub chance: f64,
    /// Number of trials run.
    pub trials: u64,
}

impl AttackOutcome {
    /// Advantage over blind guessing, clamped at 0.
    pub fn advantage(&self) -> f64 {
        (self.success_rate - self.chance).max(0.0)
    }

    /// Classifies the outcome.
    ///
    /// Thresholds: advantage below 7 % of the possible headroom → Defend;
    /// below 60 % → Mitigate; otherwise No Protection. "Headroom" is
    /// `1 - chance`, so the rule adapts to both inference attacks
    /// (chance 0.5) and injection attacks (chance ≈ 0).
    pub fn verdict(&self) -> Verdict {
        let headroom = (1.0 - self.chance).max(1e-9);
        let rel = self.advantage() / headroom;
        if rel < 0.07 {
            Verdict::Defend
        } else if rel < 0.60 {
            Verdict::Mitigate
        } else {
            Verdict::NoProtection
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(success: f64, chance: f64) -> AttackOutcome {
        AttackOutcome {
            success_rate: success,
            chance,
            trials: 1000,
        }
    }

    #[test]
    fn chance_level_defends() {
        assert_eq!(outcome(0.50, 0.5).verdict(), Verdict::Defend);
        assert_eq!(outcome(0.52, 0.5).verdict(), Verdict::Defend);
        assert_eq!(outcome(0.005, 0.0).verdict(), Verdict::Defend);
    }

    #[test]
    fn baseline_level_is_no_protection() {
        assert_eq!(outcome(0.97, 0.5).verdict(), Verdict::NoProtection);
        assert_eq!(outcome(0.95, 0.0).verdict(), Verdict::NoProtection);
    }

    #[test]
    fn intermediate_is_mitigate() {
        assert_eq!(outcome(0.65, 0.5).verdict(), Verdict::Mitigate);
        assert_eq!(outcome(0.3, 0.0).verdict(), Verdict::Mitigate);
    }

    #[test]
    fn advantage_clamps_at_zero() {
        assert_eq!(outcome(0.4, 0.5).advantage(), 0.0);
        assert_eq!(outcome(0.4, 0.5).verdict(), Verdict::Defend);
    }

    #[test]
    fn labels() {
        assert_eq!(Verdict::Defend.to_string(), "Defend");
        assert_eq!(Verdict::Mitigate.to_string(), "Mitigate");
        assert_eq!(Verdict::NoProtection.to_string(), "No Protection");
    }
}
