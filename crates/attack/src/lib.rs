//! # sbp-attack
//!
//! Proof-of-concept attacks on branch predictors and the classification
//! machinery behind the paper's Table 1:
//!
//! * [`spectre_v2`] — malicious BTB training (reuse, Listing 1);
//! * [`branchscope`] — PHT direction perception (reuse, Listing 2), plus
//!   the scenario-4 reference-branch variant that breaks plain XOR-PHT;
//! * [`shadowing`] — branch-shadowing BTB reuse;
//! * [`sbpa`] — BTB contention (eviction sensing) and Jump-over-ASLR;
//! * [`classify`] — Defend / Mitigate / No Protection verdicts;
//! * [`kind`] — [`AttackKind`], the enumerable seedable entry point the
//!   sweep engine's attack jobs dispatch through.
//!
//! All attacks run against the same [`sbp_core::SecureFrontend`] the
//! performance experiments use, in either the time-sliced (FPGA PoC) or
//! concurrent SMT scenario.
//!
//! ```
//! use sbp_attack::{classify::Verdict, spectre_v2::SpectreV2};
//! use sbp_core::Mechanism;
//!
//! let baseline = SpectreV2::new(Mechanism::Baseline, false).run(300, 1);
//! let defended = SpectreV2::new(Mechanism::noisy_xor_bp(), false).run(300, 1);
//! assert!(baseline.success_rate > defended.success_rate);
//! assert_eq!(defended.verdict(), Verdict::Defend);
//! ```

pub mod branchscope;
pub mod classify;
pub mod harness;
pub mod kind;
pub mod sbpa;
pub mod shadowing;
pub mod spectre_v2;

pub use branchscope::{BranchScope, ReferenceBranchScope};
pub use classify::{AttackOutcome, Verdict};
pub use harness::{AttackHarness, Observation, Party};
pub use kind::AttackKind;
pub use sbpa::{JumpAslr, Sbpa};
pub use shadowing::BranchShadowing;
pub use spectre_v2::SpectreV2;
