//! The attack harness: an attacker and a victim sharing a predictor
//! front-end.
//!
//! In **single-threaded** mode (the FPGA PoC scenario) both parties run on
//! hardware thread 0 and every party change is a context switch — the
//! trigger for flush/rekey mechanisms. In **SMT** mode the attacker runs
//! concurrently on hardware thread 1 with no switches, which is exactly
//! why flush-based mechanisms lose protection there (paper Table 1).
//!
//! The attacker's only real-world sensor is time; [`AttackHarness::exec`]
//! returns the modeled branch latency with configurable measurement noise
//! (standing in for the paper's Flush+Reload channel, including its false
//! positives — footnote 1 of the paper).

use sbp_core::{FrontendConfig, Mechanism, SecureFrontend};
use sbp_predictors::PredictorKind;
use sbp_sim::{execute_branch, CoreConfig};
use sbp_types::rng::Xoshiro256;
use sbp_types::{BranchInfo, BranchRecord, CoreEvent, Pc, PredictionStats, ThreadId};

/// The two parties of an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// The adversary.
    Attacker,
    /// The process holding the secret.
    Victim,
}

/// What the attacker can observe about one executed branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Modeled latency in cycles, including measurement noise.
    pub latency: f64,
    /// Ground truth (not attacker-visible; used by tests).
    pub mispredicted: bool,
}

impl Observation {
    /// The attacker's decision rule: latency above `threshold` means the
    /// branch was slow (mispredicted / missed).
    pub fn is_slow(&self, threshold: f64) -> bool {
        self.latency > threshold
    }
}

/// An attacker/victim pair sharing one [`SecureFrontend`].
pub struct AttackHarness {
    fe: SecureFrontend,
    cfg: CoreConfig,
    smt: bool,
    current: Party,
    noise: f64,
    rng: Xoshiro256,
    switches: u64,
}

impl std::fmt::Debug for AttackHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackHarness")
            .field("mechanism", &self.fe.mechanism())
            .field("smt", &self.smt)
            .field("switches", &self.switches)
            .finish()
    }
}

impl AttackHarness {
    /// Creates a harness.
    ///
    /// * `predictor` — the direction predictor under attack (PHT attacks
    ///   use [`PredictorKind::Gshare`]'s table or a bimodal-like region;
    ///   the BTB is always present);
    /// * `smt` — concurrent attacker (true) or time-sliced (false);
    /// * `noise` — measurement noise amplitude in cycles.
    pub fn new(
        predictor: PredictorKind,
        mechanism: Mechanism,
        smt: bool,
        noise: f64,
        seed: u64,
    ) -> Self {
        let cfg = if smt {
            CoreConfig::gem5()
        } else {
            CoreConfig::fpga()
        };
        let fe_cfg = FrontendConfig {
            predictor,
            btb: cfg.btb,
            ras_depth: cfg.ras_depth,
            threads: if smt { 2 } else { 1 },
            mechanism,
            key_seed: sbp_types::rng::SplitMix64::derive(seed, 0xa77a),
        };
        AttackHarness {
            fe: SecureFrontend::new(fe_cfg),
            cfg,
            smt,
            current: Party::Attacker,
            noise,
            rng: Xoshiro256::new(seed ^ 0x0bad_5eed),
            switches: 0,
        }
    }

    /// Creates a harness whose direction predictor is a plain bimodal PHT.
    ///
    /// BranchScope-style attacks target the per-address bimodal predictor
    /// (no history in the index), so the PoCs use this harness for
    /// deterministic entry collisions; owner tags are enabled when the
    /// mechanism requires them.
    pub fn with_bimodal(mechanism: Mechanism, smt: bool, noise: f64, seed: u64) -> Self {
        let cfg = if smt {
            CoreConfig::gem5()
        } else {
            CoreConfig::fpga()
        };
        let threads = if smt { 2 } else { 1 };
        let fe_cfg = FrontendConfig {
            predictor: PredictorKind::Gshare, // ignored by with_direction_predictor
            btb: cfg.btb,
            ras_depth: cfg.ras_depth,
            threads,
            mechanism,
            key_seed: sbp_types::rng::SplitMix64::derive(seed, 0xa77a),
        };
        let bimodal = sbp_predictors::Bimodal::new(4096, 2);
        let dir: Box<dyn sbp_types::DirectionPredictor + Send> = if mechanism.needs_owner_tags() {
            Box::new(bimodal.with_owner_tags())
        } else {
            Box::new(bimodal)
        };
        AttackHarness {
            fe: SecureFrontend::with_direction_predictor(dir, fe_cfg),
            cfg,
            smt,
            current: Party::Attacker,
            noise,
            rng: Xoshiro256::new(seed ^ 0x0bad_5eed),
            switches: 0,
        }
    }

    /// Hardware thread a party runs on.
    pub fn hw(&self, party: Party) -> ThreadId {
        if self.smt {
            match party {
                Party::Victim => ThreadId::new(0),
                Party::Attacker => ThreadId::new(1),
            }
        } else {
            ThreadId::new(0)
        }
    }

    /// Switches execution to `party`. On a single-threaded core this is a
    /// context switch (mechanism trigger); on SMT it is a no-op.
    pub fn switch_to(&mut self, party: Party) {
        if !self.smt && party != self.current {
            self.fe.handle_event(CoreEvent::ContextSwitch {
                hw_thread: ThreadId::new(0),
            });
            self.switches += 1;
        }
        self.current = party;
    }

    /// Executes one branch as `party` and returns the timing observation.
    pub fn exec(&mut self, party: Party, rec: &BranchRecord) -> Observation {
        self.switch_to(party);
        let hw = self.hw(party);
        let mut stats = PredictionStats::new();
        let cycles = execute_branch(&mut self.fe, &self.cfg, hw, rec, &mut stats);
        let jitter = (self.rng.next_f64() - 0.5) * 2.0 * self.noise;
        Observation {
            latency: (cycles + jitter).max(0.0),
            mispredicted: stats.cond_mispredicts
                + stats.indirect_mispredicts
                + stats.ras_mispredicts
                > 0,
        }
    }

    /// Predicted direction for a branch of `party` *without* training
    /// (models a timed conditional whose outcome the attacker chooses to
    /// match the prediction, i.e. a pure read).
    pub fn probe_direction(&mut self, party: Party, pc: Pc) -> bool {
        self.switch_to(party);
        let info = BranchInfo::new(self.hw(party), pc, sbp_types::BranchKind::Conditional);
        self.fe.predict_direction(info)
    }

    /// Predicted target for a branch of `party` (a timed indirect jump).
    pub fn probe_target(&mut self, party: Party, pc: Pc) -> Option<Pc> {
        self.switch_to(party);
        let info = BranchInfo::new(self.hw(party), pc, sbp_types::BranchKind::IndirectJump);
        self.fe.predict_target(info)
    }

    /// A latency threshold separating "fast" (predicted correctly) from
    /// "slow" on this core.
    pub fn threshold(&self) -> f64 {
        self.cfg.mispredict_penalty as f64 * 0.5
    }

    /// The configured mechanism.
    pub fn mechanism(&self) -> Mechanism {
        self.fe.mechanism()
    }

    /// Whether this is the SMT scenario.
    pub fn is_smt(&self) -> bool {
        self.smt
    }

    /// Context switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Draws from the harness RNG (for attack trial randomization).
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbp_types::BranchKind;

    #[test]
    fn single_thread_switches_fire_events() {
        let mut h = AttackHarness::new(
            PredictorKind::Gshare,
            Mechanism::noisy_xor_bp(),
            false,
            0.0,
            1,
        );
        h.switch_to(Party::Victim);
        h.switch_to(Party::Attacker);
        h.switch_to(Party::Attacker); // no-op
        assert_eq!(h.switches(), 2);
    }

    #[test]
    fn smt_mode_never_switches() {
        let mut h = AttackHarness::new(
            PredictorKind::Gshare,
            Mechanism::CompleteFlush,
            true,
            0.0,
            1,
        );
        h.switch_to(Party::Victim);
        h.switch_to(Party::Attacker);
        assert_eq!(h.switches(), 0);
        assert_ne!(h.hw(Party::Attacker), h.hw(Party::Victim));
    }

    #[test]
    fn exec_observes_latency_difference() {
        let mut h = AttackHarness::new(PredictorKind::Gshare, Mechanism::Baseline, false, 0.0, 2);
        let ind = BranchRecord::taken(Pc::new(0x700), BranchKind::IndirectJump, Pc::new(0x3000), 0);
        let cold = h.exec(Party::Attacker, &ind);
        let warm = h.exec(Party::Attacker, &ind);
        assert!(
            cold.latency > warm.latency,
            "cold {} warm {}",
            cold.latency,
            warm.latency
        );
        assert!(cold.is_slow(h.threshold()));
        assert!(!warm.is_slow(h.threshold()));
    }

    #[test]
    fn noise_perturbs_latency() {
        let mut a = AttackHarness::new(PredictorKind::Gshare, Mechanism::Baseline, false, 2.0, 3);
        let rec = BranchRecord::not_taken(Pc::new(0x100), 0);
        let o1 = a.exec(Party::Attacker, &rec);
        let o2 = a.exec(Party::Attacker, &rec);
        assert_ne!(o1.latency, o2.latency);
    }
}
