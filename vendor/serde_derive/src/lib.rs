//! Offline stand-in for `serde_derive`: the derive macros accept the same
//! attribute grammar as the real crate and emit an empty impl of the
//! sibling `serde` stub's marker trait, so `T: serde::Serialize` bounds
//! hold for derived types. Generic types are not supported (nothing in
//! the workspace derives on one); extend the parser if that changes.

use proc_macro::{TokenStream, TokenTree};

/// Returns the name of the `struct`/`enum`/`union` the derive is on.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(kw) = &tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        let name = name.to_string();
                        assert!(
                            !matches!(tokens.next(), Some(TokenTree::Punct(p)) if p.as_char() == '<'),
                            "serde stub derive does not support generic type `{name}`",
                        );
                        return name;
                    }
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde stub derive: no struct/enum/union in input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Serialize for {} {{}}", type_name(input))
        .parse()
        .expect("valid impl block")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {} {{}}",
        type_name(input)
    )
    .parse()
    .expect("valid impl block")
}
