//! Offline stand-in for `serde`. Exposes the two marker traits and the
//! derive macros under the same names as the real crate (traits live in the
//! type namespace, derives in the macro namespace, so `use serde::{Serialize,
//! Deserialize}` imports both — exactly as with real serde).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; the real crate's serialization surface is not modeled.
pub trait Serialize {}

/// Marker trait; the real crate's deserialization surface is not modeled.
pub trait Deserialize<'de> {}
