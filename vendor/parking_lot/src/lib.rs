//! Offline stand-in for `parking_lot`: a `Mutex` with the real crate's
//! poison-free API (`lock` never returns a `Result`), backed by
//! `std::sync::Mutex`.

use std::sync::MutexGuard;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}
