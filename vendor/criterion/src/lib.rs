//! Offline stand-in for `criterion`: the same call-site API
//! (`criterion_group!` / `criterion_main!` / `Criterion` /
//! `BenchmarkGroup` / `Bencher::iter` / `black_box`) backed by a simple
//! wall-clock runner — no statistics engine, no HTML reports. Each
//! benchmark is timed over `sample_size` samples whose iteration counts
//! are calibrated so a sample lasts roughly
//! `measurement_time / sample_size`, and the mean/min per-iteration time
//! is printed.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, &name.into(), f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(self.criterion, &full, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, name: &str, mut f: F) {
    // Calibrate: grow the iteration count until one sample takes at least
    // the per-sample slice of the measurement budget.
    let slice = config.measurement_time.div_f64(config.sample_size as f64);
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= slice || b.elapsed >= config.measurement_time || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            100.0
        } else {
            (slice.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 100.0)
        };
        iters = ((iters as f64) * grow).ceil() as u64;
    }

    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name}: mean {} / iter, min {} / iter ({} samples x {iters} iters)",
        fmt_time(mean),
        fmt_time(min),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
