//! Offline stand-in for `bytes`: the reader/writer surface the trace
//! format uses, backed by `Vec<u8>`/`&[u8]`. Multi-byte accessors are
//! big-endian, matching the real crate's `get_*`/`put_*` defaults.

use std::ops::Deref;

pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable byte buffer; dereferences to `[u8]` like the real crate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}
