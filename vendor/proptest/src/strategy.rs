//! The `Strategy` trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof!` backing type: picks an arm uniformly per case.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
