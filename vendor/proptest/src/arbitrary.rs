//! `any::<T>()` and the `Arbitrary` impls the workspace tests need.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}
