//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Vec of `element`-generated values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
