//! Offline stand-in for `proptest`: the macro and strategy surface the
//! workspace tests use (`proptest!`, `prop_oneof!`, `prop_assert*!`,
//! `prop_assume!`, `Strategy`, `Just`, `any`, `prop::collection::vec`),
//! driven by a deterministic splitmix64 generator. No shrinking, no
//! persistence of failing cases — a failing property panics with the
//! generated inputs left to `RUST_BACKTRACE` inspection.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prop {
    //! Namespace mirror of `proptest::prop` (`prop::collection::vec`, ...).
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each property over this many deterministic cases.
pub const CASES: u32 = 256;

/// Expands each `fn name(arg in strategy, ...) { body }` item into a
/// `#[test]` (the attribute comes from the call site, as with real
/// proptest) that evaluates the body over [`CASES`] generated inputs.
/// A property whose every case is rejected by `prop_assume!` fails —
/// the real crate's "too many global rejects" guard against properties
/// that silently never execute.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut executed: u32 = 0;
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // The closure gives `prop_assume!` an early-exit point;
                    // it yields false when the case was rejected. The allow
                    // covers bodies that end by panicking, which make the
                    // trailing `true` unreachable.
                    #[allow(unreachable_code, clippy::redundant_closure_call)]
                    let survived = (|| -> bool {
                        $body;
                        true
                    })();
                    if survived {
                        executed += 1;
                    }
                }
                assert!(
                    executed > 0,
                    "property {}: prop_assume! rejected all {} generated cases",
                    stringify!($name),
                    $crate::CASES,
                );
            }
        )*
    };
}

/// Skips the current generated case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return false;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks one of the given strategies uniformly per generated case. All
/// arms must yield the same `Value` type (they are boxed internally).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #[test]
        fn generated_values_respect_the_strategy(x in 0u32..10, flag in crate::arbitrary::any::<bool>()) {
            assert!(x < 10);
            let _ = flag;
        }

        #[test]
        fn assume_skips_without_failing(x in 0u32..10) {
            crate::prop_assume!(x % 2 == 0);
            assert_eq!(x % 2, 0);
        }

        #[test]
        #[should_panic(expected = "rejected all")]
        fn rejecting_every_case_fails_the_property(x in 0u32..10) {
            crate::prop_assume!(x > 100);
            unreachable!("no case can satisfy the assumption");
        }
    }
}
