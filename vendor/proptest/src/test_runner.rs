//! Deterministic random number generation for case synthesis.

/// splitmix64; deterministic per test so failures reproduce exactly.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name so distinct properties explore distinct
    /// sequences while every run of the same property is identical.
    pub fn deterministic(test_name: &str) -> Self {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for b in test_name.bytes() {
            seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
