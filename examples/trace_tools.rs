//! Trace tooling: generate a synthetic benchmark trace, serialize it to
//! the binary format, read it back and replay it against two predictors.
//!
//! Run with `cargo run --example trace_tools --release`.

use secure_bp::isolation::{FrontendConfig, Mechanism, SecureFrontend};
use secure_bp::predictors::PredictorKind;
use secure_bp::sim::{execute_branch, CoreConfig};
use secure_bp::trace::format::{decode_trace, encode_trace};
use secure_bp::trace::{TraceEvent, TraceGenerator, WorkloadProfile};
use secure_bp::types::{CoreEvent, PredictionStats, ThreadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(300_000, &std::env::temp_dir().join("libquantum.sbpt"))
}

/// The example's whole main path, parameterized on the event count and the
/// on-disk path so the smoke tests (`tests/examples_smoke.rs`) can run it
/// at reduced scale without clobbering a real capture.
pub fn run(event_count: usize, path: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    // 1. Capture the 'libquantum' event stream.
    let profile = WorkloadProfile::by_name("libquantum")?;
    let events: Vec<TraceEvent> = TraceGenerator::new(&profile, 0x1000_0000, 2026)
        .take(event_count)
        .collect();

    // 2. Serialize + reload through the binary trace format.
    let bytes = encode_trace(&events);
    println!(
        "captured {} events -> {} bytes on disk",
        events.len(),
        bytes.len()
    );
    std::fs::write(path, &bytes)?;
    let reloaded = decode_trace(&std::fs::read(path)?)?;
    assert_eq!(reloaded, events, "binary round trip must be lossless");
    println!("round-trip through {} verified", path.display());

    // 3. Replay the same trace against two predictors.
    let core = CoreConfig::fpga();
    for kind in [PredictorKind::Gshare, PredictorKind::TageScL] {
        let mut fe = SecureFrontend::new(FrontendConfig::paper_fpga(kind, Mechanism::Baseline));
        let mut stats = PredictionStats::new();
        let mut cycles = 0.0;
        let t0 = ThreadId::new(0);
        for ev in &reloaded {
            match ev {
                TraceEvent::Branch(rec) => {
                    cycles += execute_branch(&mut fe, &core, t0, rec, &mut stats);
                }
                TraceEvent::PrivilegeSwitch(to) => {
                    fe.handle_event(CoreEvent::PrivilegeSwitch {
                        hw_thread: t0,
                        to: *to,
                    });
                }
            }
        }
        stats.cycles = cycles as u64;
        println!(
            "{:<10} accuracy {:.2}%  MPKI {:.2}  IPC {:.2}",
            kind.label(),
            100.0 * stats.cond_accuracy(),
            stats.mpki(),
            stats.ipc()
        );
    }
    std::fs::remove_file(path).ok();
    Ok(())
}
