//! Attack sweep: drive a Table-1-style security grid through the sweep
//! engine with a persistent store, demonstrating resume.
//!
//! The same `SweepSpec` machinery that measures mechanism overhead runs
//! the PoC campaigns: rows are attacks, columns are mechanism × core-mode
//! series, cells are attack success rates. The second `run_with` call
//! against the same store executes zero jobs — every cell is fingerprinted
//! and found completed.
//!
//! Run with `cargo run --example attack_sweep --release`.

use std::path::Path;

use secure_bp::attack::AttackKind;
use secure_bp::isolation::Mechanism;
use secure_bp::sweep::{RunOptions, SweepSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = std::env::temp_dir().join(format!(
        "sbp_attack_sweep_example_{}.jsonl",
        std::process::id()
    ));
    run(1_000, &store)
}

/// The example's whole main path, parameterized on the trial count and
/// store path so the smoke tests (`tests/examples_smoke.rs`) can run it
/// at reduced scale.
pub fn run(trials: u64, store: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let _ = std::fs::remove_file(store);
    let spec = SweepSpec::attack("attack sweep example")
        .with_attacks(vec![
            AttackKind::SpectreV2,
            AttackKind::BranchScope,
            AttackKind::Sbpa,
        ])
        .with_mechanisms(vec![
            Mechanism::Baseline,
            Mechanism::CompleteFlush,
            Mechanism::noisy_xor_bp(),
        ])
        .with_trials(trials);
    let opts = RunOptions {
        store: Some(store.to_path_buf()),
        shard: None,
    };

    let first = spec.run_with(&opts)?;
    println!(
        "first run:  executed {:>2} jobs, skipped {:>2} (cold store)",
        first.executed, first.skipped
    );
    let second = spec.run_with(&opts)?;
    println!(
        "second run: executed {:>2} jobs, skipped {:>2} (resumed from {})",
        second.executed,
        second.skipped,
        store.display()
    );

    let report = second.report.ok_or("complete run must yield a report")?;
    println!("\nattack success rates (rows: attacks, columns: mechanism-mode):");
    print!("{}", report.to_table());
    println!("\nverdicts:");
    for rec in &report.records {
        let a = rec.attack.as_ref().ok_or("attack record")?;
        println!(
            "  {:<22} vs {:<14} [{:>11}] -> {:>6.2}%  {}",
            a.attack,
            rec.series,
            rec.interval,
            a.success_rate * 100.0,
            a.verdict
        );
    }
    std::fs::remove_file(store)?;
    Ok(())
}
