//! Quickstart: build a secure branch-prediction front-end, run a synthetic
//! workload through the timing model, and watch a context switch re-key
//! the predictor.
//!
//! Run with `cargo run --example quickstart --release`.

use secure_bp::isolation::{FrontendConfig, Mechanism, SecureFrontend};
use secure_bp::predictors::PredictorKind;
use secure_bp::sim::{execute_branch, CoreConfig};
use secure_bp::trace::{TraceEvent, TraceGenerator, WorkloadProfile};
use secure_bp::types::{BranchInfo, BranchKind, CoreEvent, Pc, PredictionStats, ThreadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(200_000)
}

/// The example's whole main path, parameterized on the branch count so the
/// smoke tests (`tests/examples_smoke.rs`) can run it at reduced scale.
pub fn run(target_branches: usize) -> Result<(), Box<dyn std::error::Error>> {
    // 1. A TAGE-SC-L front-end protected by the paper's full mechanism.
    let mut fe = SecureFrontend::new(FrontendConfig::paper_fpga(
        PredictorKind::TageScL,
        Mechanism::noisy_xor_bp(),
    ));
    println!(
        "predictor: {} ({} KiB of tables)",
        fe.predictor_name(),
        fe.storage_bits() / 8192
    );
    println!("mechanism: {}", fe.mechanism());

    // 2. Run the synthetic 'gcc' branch stream through the timing model.
    let profile = WorkloadProfile::by_name("gcc")?;
    let mut stream = TraceGenerator::new(&profile, 0x1000_0000, 42);
    let core = CoreConfig::fpga();
    let mut stats = PredictionStats::new();
    let t0 = ThreadId::new(0);
    let mut branches = 0;
    while branches < target_branches {
        match stream.next_event() {
            TraceEvent::Branch(rec) => {
                execute_branch(&mut fe, &core, t0, &rec, &mut stats);
                branches += 1;
            }
            TraceEvent::PrivilegeSwitch(to) => {
                fe.handle_event(CoreEvent::PrivilegeSwitch { hw_thread: t0, to });
            }
        }
    }
    println!(
        "ran {branches} branches: {:.1}% direction accuracy, {:.2} MPKI, BTB hit {:.1}%",
        100.0 * stats.cond_accuracy(),
        stats.mpki(),
        100.0 * stats.btb_hit_rate()
    );

    // 3. Isolation in action: a planted BTB entry becomes unreadable after
    //    the context-switch rekey.
    let jump = BranchInfo::new(t0, Pc::new(0x4000_0000), BranchKind::IndirectJump);
    fe.update_target(jump, Pc::new(0x0bad_cafe));
    println!(
        "before switch: predicted target = {:?}",
        fe.predict_target(jump)
    );
    fe.handle_event(CoreEvent::ContextSwitch { hw_thread: t0 });
    println!(
        "after  switch: predicted target = {:?} (stale entry is garbage)",
        fe.predict_target(jump)
    );
    println!("isolation stats: {:?}", fe.stats());
    Ok(())
}
