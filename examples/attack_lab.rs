//! Attack lab: run the paper's proof-of-concept attacks against a chosen
//! set of defenses and print success rates + verdicts.
//!
//! Run with `cargo run --example attack_lab --release`.

use secure_bp::attack::{BranchScope, JumpAslr, ReferenceBranchScope, Sbpa, SpectreV2};
use secure_bp::isolation::Mechanism;

fn main() {
    run(2_000, 25);
}

/// The example's whole main path, parameterized on the trial counts so the
/// smoke tests (`tests/examples_smoke.rs`) can run it at reduced scale.
pub fn run(trials: u64, aslr_trials: u64) {
    let mechanisms = [
        Mechanism::Baseline,
        Mechanism::CompleteFlush,
        Mechanism::xor_bp(),
        Mechanism::noisy_xor_bp(),
    ];

    println!("== Spectre-v2 malicious BTB training (single-threaded core) ==");
    for mech in mechanisms {
        let out = SpectreV2::new(mech, false).run(trials, 7);
        println!(
            "{:<16} success {:>6.2}%  -> {}",
            mech.label(),
            out.success_rate * 100.0,
            out.verdict()
        );
    }

    println!("\n== BranchScope PHT perception (single-threaded core) ==");
    for mech in [
        Mechanism::Baseline,
        Mechanism::xor_pht(),
        Mechanism::enhanced_xor_pht(),
    ] {
        let out = BranchScope::new(mech, false).run(trials, 9);
        println!(
            "{:<16} accuracy {:>6.2}%  -> {}",
            mech.label(),
            out.success_rate * 100.0,
            out.verdict()
        );
    }

    println!("\n== The scenario-4 corner case: reference-branch attack ==");
    for mech in [Mechanism::xor_pht(), Mechanism::enhanced_xor_pht()] {
        let out = ReferenceBranchScope::new(mech, false).run(trials, 11);
        println!(
            "{:<16} accuracy {:>6.2}%  ({})",
            mech.label(),
            out.success_rate * 100.0,
            if out.advantage() > 0.35 {
                "fixed-slice cancellation leaks!"
            } else {
                "defended"
            }
        );
    }

    println!("\n== SBPA eviction sensing on SMT (concurrent attacker) ==");
    for mech in [
        Mechanism::Baseline,
        Mechanism::xor_btb(),
        Mechanism::noisy_xor_btb(),
    ] {
        let out = Sbpa::new(mech, true).run(trials, 13);
        println!(
            "{:<16} accuracy {:>6.2}%  -> {}",
            mech.label(),
            out.success_rate * 100.0,
            out.verdict()
        );
    }

    println!("\n== Jump-over-ASLR set-index recovery ==");
    for mech in [Mechanism::Baseline, Mechanism::noisy_xor_btb()] {
        let out = JumpAslr::new(mech).run(aslr_trials, 15);
        println!(
            "{:<16} recovery {:>6.1}%  -> {}",
            mech.label(),
            out.success_rate * 100.0,
            out.verdict()
        );
    }
}
