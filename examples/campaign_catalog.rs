//! Catalog tour: every named experiment grid in the campaign registry,
//! plus one entry run in-process.
//!
//! The same names drive the `campaign` binary's manifests — see the
//! README "Campaigns" section. Run with
//! `cargo run --example campaign_catalog --release`.

use secure_bp::campaign::{check_entry, Catalog};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(200)
}

/// The example's whole main path, parameterized on the trial count so the
/// smoke tests (`tests/examples_smoke.rs`) can run it at reduced scale.
pub fn run(trials: u64) -> Result<(), Box<dyn std::error::Error>> {
    println!("{:<18} {:<42} {:>6} axes", "name", "artifact", "checks");
    for entry in Catalog::entries() {
        println!(
            "{:<18} {:<42} {:>6} {}",
            entry.name,
            entry.artifact,
            entry.expectations().len(),
            entry.axes
        );
    }

    let entry = Catalog::get("smoke_attack").ok_or("smoke_attack is registered")?;
    println!(
        "\nrunning {:?} ({}) in-process:",
        entry.name, entry.artifact
    );
    let report = entry.spec().with_trials(trials).run()?;
    print!("{}", report.to_table());
    // End with the paper-expectation verdict, campaign --check style.
    print!("{}", check_entry(entry, &report).to_table());
    Ok(())
}
