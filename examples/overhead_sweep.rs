//! Overhead sweep: measure the performance cost of every isolation
//! mechanism on one benchmark pair, single-threaded and SMT-2.
//!
//! A miniature of the paper's Figures 7–10 on a single case; run with
//! `cargo run --example overhead_sweep --release [-- <target> <background>]`.

use secure_bp::isolation::Mechanism;
use secure_bp::predictors::PredictorKind;
use secure_bp::sim::{single_overhead, smt_overhead, CoreConfig, SwitchInterval, WorkBudget};
use secure_bp::trace::BenchmarkCase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let target = args.get(1).map(String::as_str).unwrap_or("gcc").to_owned();
    let background = args
        .get(2)
        .map(String::as_str)
        .unwrap_or("calculix")
        .to_owned();
    run(
        Box::leak(target.into_boxed_str()),
        Box::leak(background.into_boxed_str()),
        WorkBudget {
            warmup: 200_000,
            measure: 2_000_000,
        },
        WorkBudget {
            warmup: 2_000_000,
            measure: 40_000_000,
        },
    )
}

/// The example's whole main path, parameterized on the workload pair and
/// work budgets so the smoke tests (`tests/examples_smoke.rs`) can run it
/// at reduced scale.
pub fn run(
    target: &'static str,
    background: &'static str,
    budget: WorkBudget,
    smt_budget: WorkBudget,
) -> Result<(), Box<dyn std::error::Error>> {
    let case = BenchmarkCase {
        id: "custom",
        target,
        background,
    };
    let mechanisms = [
        Mechanism::CompleteFlush,
        Mechanism::PreciseFlush,
        Mechanism::xor_btb(),
        Mechanism::enhanced_xor_pht(),
        Mechanism::xor_bp(),
        Mechanism::noisy_xor_bp(),
    ];

    println!(
        "single-threaded core (gshare), {}+{}:",
        case.target, case.background
    );
    for mech in mechanisms {
        let o = single_overhead(
            &case,
            CoreConfig::fpga(),
            PredictorKind::Gshare,
            mech,
            SwitchInterval::M8,
            budget,
            1,
        )?;
        println!("  {:<18} {:+.2}%", mech.label(), o * 100.0);
    }

    println!(
        "SMT-2 core (TAGE-SC-L), {} co-running with {}:",
        case.target, case.background
    );
    for mech in [
        Mechanism::CompleteFlush,
        Mechanism::PreciseFlush,
        Mechanism::noisy_xor_bp(),
    ] {
        let o = smt_overhead(
            &[case.target, case.background],
            CoreConfig::gem5(),
            PredictorKind::TageScL,
            mech,
            SwitchInterval::M8,
            smt_budget,
            1,
        )?;
        println!("  {:<18} {:+.2}%", mech.label(), o * 100.0);
    }
    Ok(())
}
