//! Overhead sweep: measure the performance cost of every isolation
//! mechanism on one benchmark pair, single-threaded and SMT-2.
//!
//! A miniature of the paper's Figures 7–10 on a single case, driven by two
//! declarative `SweepSpec`s; run with
//! `cargo run --example overhead_sweep --release [-- <target> <background>]`.

use secure_bp::isolation::Mechanism;
use secure_bp::predictors::PredictorKind;
use secure_bp::sim::{SwitchInterval, WorkBudget};
use secure_bp::sweep::{CaseSpec, SweepSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let target = args.get(1).map(String::as_str).unwrap_or("gcc");
    let background = args.get(2).map(String::as_str).unwrap_or("calculix");
    run(
        target,
        background,
        WorkBudget {
            warmup: 200_000,
            measure: 2_000_000,
        },
        WorkBudget {
            warmup: 2_000_000,
            measure: 40_000_000,
        },
    )
}

/// The example's whole main path, parameterized on the workload pair and
/// work budgets so the smoke tests (`tests/examples_smoke.rs`) can run it
/// at reduced scale.
pub fn run(
    target: &str,
    background: &str,
    budget: WorkBudget,
    smt_budget: WorkBudget,
) -> Result<(), Box<dyn std::error::Error>> {
    let case = CaseSpec::pair("custom", target, background);

    println!("single-threaded core (gshare), {target}+{background}:");
    let single = SweepSpec::single("overhead sweep (single-core)")
        .with_cases(vec![case.clone()])
        .with_intervals(vec![SwitchInterval::M8])
        .with_mechanisms(vec![
            Mechanism::CompleteFlush,
            Mechanism::PreciseFlush,
            Mechanism::xor_btb(),
            Mechanism::enhanced_xor_pht(),
            Mechanism::xor_bp(),
            Mechanism::noisy_xor_bp(),
        ])
        .with_budget(budget)
        .with_master_seed(1)
        .run()?;
    for s in &single.series {
        println!(
            "  {:<18} {}",
            s.label,
            secure_bp::types::report::pct(s.mean)
        );
    }

    println!("SMT-2 core (TAGE-SC-L), {target} co-running with {background}:");
    let smt = SweepSpec::smt("overhead sweep (SMT-2)")
        .with_predictors(vec![PredictorKind::TageScL])
        .with_cases(vec![case])
        .with_mechanisms(vec![
            Mechanism::CompleteFlush,
            Mechanism::PreciseFlush,
            Mechanism::noisy_xor_bp(),
        ])
        .with_budget(smt_budget)
        .with_master_seed(1)
        .run()?;
    for s in &smt.series {
        println!(
            "  {:<18} {}",
            s.label,
            secure_bp::types::report::pct(s.mean)
        );
    }
    Ok(())
}
